package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFragmentBuilderSpansAndMarks(t *testing.T) {
	b := NewFragmentBuilder("coordinator", "req-42")
	b.Span(0, "plan", 0, 3*time.Millisecond, Arg{"reads", 5})
	b.Span(2, "fanout", time.Millisecond, 4*time.Millisecond)
	b.Mark(2, "retry", Arg{"attempt", 1})
	// A bad bracket (end before start) clamps to zero duration rather
	// than emitting a negative-width span.
	b.Span(1, "backwards", 5*time.Millisecond, 2*time.Millisecond)

	f := b.Fragment()
	if f.Process != "coordinator" || f.RequestID != "req-42" {
		t.Fatalf("fragment identity = %q/%q", f.Process, f.RequestID)
	}
	if len(f.Spans) != 3 || len(f.Marks) != 1 {
		t.Fatalf("got %d spans, %d marks", len(f.Spans), len(f.Marks))
	}
	if f.Spans[0].Name != "plan" || f.Spans[0].Args["reads"] != 5 {
		t.Errorf("span 0 = %+v", f.Spans[0])
	}
	if f.Spans[0].DurUS != 3000 {
		t.Errorf("plan dur = %v us, want 3000", f.Spans[0].DurUS)
	}
	if f.Spans[2].DurUS != 0 {
		t.Errorf("backwards span dur = %v, want clamped 0", f.Spans[2].DurUS)
	}
	if f.Marks[0].TID != 2 || f.Marks[0].Args["attempt"] != 1 {
		t.Errorf("mark = %+v", f.Marks[0])
	}

	// Fragment returns a copy: appending afterwards must not alias.
	b.Span(0, "late", 0, time.Millisecond)
	if len(f.Spans) != 3 {
		t.Fatalf("snapshot grew after later Span call")
	}
}

func TestFragmentBuilderConcurrent(t *testing.T) {
	b := NewFragmentBuilder("w", "")
	var wg sync.WaitGroup
	for lane := 1; lane <= 8; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Span(lane, "s", 0, time.Microsecond)
				b.Mark(lane, "m")
			}
		}(lane)
	}
	wg.Wait()
	f := b.Fragment()
	if len(f.Spans) != 400 || len(f.Marks) != 400 {
		t.Fatalf("got %d spans, %d marks; want 400 each", len(f.Spans), len(f.Marks))
	}
}

// TestWriteChromeTraceMultiLanes pins the multi-process layout: fragment
// i becomes pid i+1 with a process_name metadata event, every event
// lands in its fragment's pid, and tid 0 renders as lane 1.
func TestWriteChromeTraceMultiLanes(t *testing.T) {
	frags := []Fragment{
		{
			Process:   "coordinator",
			RequestID: "req-1",
			Spans: []Span{
				{Name: "plan", TID: 0, StartUS: 0, DurUS: 100},
				{Name: "subset", TID: 3, StartUS: 10, DurUS: 80, Args: map[string]int64{"shards": 2}},
			},
			Marks: []Mark{{Name: "retry", TID: 3, TimeUS: 50}},
		},
		{
			Process: "http://worker-0",
			Spans:   []Span{{Name: "search", TID: 0, StartUS: 5, DurUS: 60}},
		},
	}
	var sb strings.Builder
	if err := WriteChromeTraceMulti(&sb, frags); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := ValidateChromeTrace(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("writer output fails its own validator: %v\n%s", err, sb.String())
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6:\n%s", len(doc.TraceEvents), sb.String())
	}

	byName := map[string][]int{}
	metaNames := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if e.Name != "process_name" {
				t.Errorf("metadata event named %q", e.Name)
			}
			metaNames[e.PID], _ = e.Args["name"].(string)
			continue
		}
		byName[e.Name] = append(byName[e.Name], e.PID)
		switch e.Name {
		case "plan":
			if e.Ph != "X" || e.TID != 1 || e.Dur != 100 {
				t.Errorf("plan event = %+v (want X, tid 1, dur 100)", e)
			}
		case "subset":
			if e.TID != 3 || e.Args["shards"] != float64(2) {
				t.Errorf("subset event = %+v", e)
			}
		case "retry":
			if e.Ph != "i" || e.S != "t" || e.TID != 3 {
				t.Errorf("retry event = %+v (want thread-scoped instant)", e)
			}
		case "search":
			if e.PID != 2 || e.TID != 1 {
				t.Errorf("search event = %+v (want pid 2, tid 1)", e)
			}
		}
	}
	if metaNames[1] != "coordinator" || metaNames[2] != "http://worker-0" {
		t.Errorf("process_name lanes = %v", metaNames)
	}
	for _, name := range []string{"plan", "subset", "retry"} {
		for _, pid := range byName[name] {
			if pid != 1 {
				t.Errorf("%s event in pid %d, want 1", name, pid)
			}
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty doc", `{"traceEvents":[]}`},
		{"not json", `nope`},
		{"missing name", `{"traceEvents":[{"ph":"X","pid":1,"tid":1}]}`},
		{"unknown phase", `{"traceEvents":[{"name":"a","ph":"Q","pid":1,"tid":1}]}`},
		{"zero pid", `{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":1}]}`},
		{"negative ts", `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"pid":1,"tid":1}]}`},
		{"metadata only", `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":1}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := ValidateChromeTrace(strings.NewReader(c.in)); err == nil {
				t.Errorf("accepted invalid trace %s", c.in)
			}
		})
	}
}

// Fragments must survive a JSON round trip unchanged — they ride inside
// SearchResponse between worker and coordinator.
func TestFragmentJSONRoundTrip(t *testing.T) {
	in := Fragment{
		Process:   "http://w1",
		RequestID: "r-9",
		Spans:     []Span{{Name: "search", TID: 2, StartUS: 1.5, DurUS: 42, Args: map[string]int64{"reads": 3}}},
		Marks:     []Mark{{Name: "memo", TimeUS: 7}},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Fragment
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out.Process != in.Process || out.RequestID != in.RequestID ||
		len(out.Spans) != 1 || out.Spans[0].Args["reads"] != 3 ||
		len(out.Marks) != 1 || out.Marks[0].TimeUS != 7 {
		t.Fatalf("round trip mangled fragment: %+v", out)
	}
}
