package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one completed phase inside a process's trace fragment. Times
// are microsecond offsets from the fragment's own start, so a fragment
// is self-contained on the wire and the assembler never needs the two
// processes' clocks to agree — only the coordinator's send/receive span
// brackets the worker's fragment in the merged timeline.
type Span struct {
	// Name is the phase name ("fanout", "search", "merge", ...).
	Name string `json:"name"`
	// TID is the logical lane inside the process (one per shard subset
	// on the coordinator, one per worker batch lane). 0 renders as 1.
	TID int `json:"tid,omitempty"`
	// StartUS and DurUS position the span in microseconds.
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	// Args carries integer annotations (read counts, retry ordinals,
	// the paper's work counters).
	Args map[string]int64 `json:"args,omitempty"`
}

// Mark is one instant event inside a fragment (a retry, a cache hit, a
// shed decision) at a microsecond offset.
type Mark struct {
	Name   string           `json:"name"`
	TID    int              `json:"tid,omitempty"`
	TimeUS float64          `json:"time_us"`
	Args   map[string]int64 `json:"args,omitempty"`
}

// Fragment is one process's contribution to a cross-process trace: the
// worker half of the span-fragment wire contract (DESIGN.md §7). A
// sampled worker returns its fragment inside the SearchResponse; the
// coordinator appends its own fragment and renders the set as one
// Chrome timeline with a pid lane per process.
type Fragment struct {
	// Process names the originating process ("coordinator", a worker's
	// base URL). It becomes the Chrome process_name lane label.
	Process string `json:"process"`
	// RequestID is the X-Km-Request-Id the fragment belongs to.
	RequestID string `json:"request_id,omitempty"`
	Spans     []Span `json:"spans"`
	Marks     []Mark `json:"marks,omitempty"`
}

// FragmentBuilder accumulates spans and marks for one process's
// fragment. It is safe for concurrent use — the coordinator's subset
// goroutines record into distinct TID lanes of one builder. The zero
// value is not usable; construct with NewFragmentBuilder.
type FragmentBuilder struct {
	mu    sync.Mutex
	frag  Fragment
	start time.Time
}

// NewFragmentBuilder starts an empty fragment; span offsets are
// measured from this call.
func NewFragmentBuilder(process, requestID string) *FragmentBuilder {
	return &FragmentBuilder{
		frag:  Fragment{Process: process, RequestID: requestID},
		start: time.Now(),
	}
}

// Now returns the current offset from the builder's start, for callers
// that want to bracket a phase themselves before calling Span.
func (b *FragmentBuilder) Now() time.Duration { return time.Since(b.start) }

// Span records one completed phase on the given lane, from start to
// end offsets (as returned by Now).
func (b *FragmentBuilder) Span(tid int, name string, start, end time.Duration, args ...Arg) {
	s := Span{
		Name:    name,
		TID:     tid,
		StartUS: float64(start.Nanoseconds()) / 1e3,
		DurUS:   float64((end - start).Nanoseconds()) / 1e3,
	}
	if s.DurUS < 0 {
		s.DurUS = 0
	}
	s.Args = argMap(args)
	b.mu.Lock()
	b.frag.Spans = append(b.frag.Spans, s)
	b.mu.Unlock()
}

// Mark records one instant event on the given lane at the current
// offset.
func (b *FragmentBuilder) Mark(tid int, name string, args ...Arg) {
	m := Mark{
		Name:   name,
		TID:    tid,
		TimeUS: float64(b.Now().Nanoseconds()) / 1e3,
		Args:   argMap(args),
	}
	b.mu.Lock()
	b.frag.Marks = append(b.frag.Marks, m)
	b.mu.Unlock()
}

// Fragment returns a copy of everything recorded so far.
func (b *FragmentBuilder) Fragment() Fragment {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.frag
	out.Spans = append([]Span(nil), b.frag.Spans...)
	if b.frag.Marks != nil {
		out.Marks = append([]Mark(nil), b.frag.Marks...)
	}
	return out
}

// argMap renders Args as the wire/Chrome map form; nil when empty.
func argMap(args []Arg) map[string]int64 {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]int64, len(args))
	for _, a := range args {
		m[a.Key] = a.Val
	}
	return m
}

// WriteChromeTraceMulti renders a set of fragments as one Chrome
// trace-event document: fragment i becomes pid i+1 with a process_name
// metadata event, spans become complete ("X") events and marks become
// thread-scoped instants, so about:tracing and Perfetto show one lane
// group per process. Span offsets are kept fragment-relative: each
// process's lane starts at its own zero, which is exactly the wire
// contract (fragments carry no cross-process clock).
func WriteChromeTraceMulti(w io.Writer, frags []Fragment) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	for i, f := range frags {
		pid := i + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			TID:  1,
			Args: map[string]string{"name": f.Process},
		})
		for _, s := range f.Spans {
			ce := chromeEvent{
				Name: s.Name,
				Ph:   "X",
				TS:   s.StartUS,
				Dur:  s.DurUS,
				PID:  pid,
				TID:  max(s.TID, 1),
			}
			if len(s.Args) > 0 {
				ce.Args = s.Args
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
		for _, m := range f.Marks {
			ce := chromeEvent{
				Name: m.Name,
				Ph:   "i",
				S:    "t",
				TS:   m.TimeUS,
				PID:  pid,
				TID:  max(m.TID, 1),
			}
			if len(m.Args) > 0 {
				ce.Args = m.Args
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	return json.NewEncoder(w).Encode(out)
}

// ValidateChromeTrace checks that r is a well-formed Chrome trace-event
// document: a traceEvents array whose entries all carry a name, a known
// phase and positive pid/tid, with at least one non-metadata event. It
// is the schema check the trace smoke tests run on dumped timelines.
func ValidateChromeTrace(r io.Reader) error {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("chrome trace: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("chrome trace: no traceEvents")
	}
	real := 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("chrome trace: event %d has no name", i)
		}
		switch e.Ph {
		case "B", "E", "X", "i", "M":
		default:
			return fmt.Errorf("chrome trace: event %d has unknown phase %q", i, e.Ph)
		}
		if e.PID <= 0 || e.TID <= 0 {
			return fmt.Errorf("chrome trace: event %d has non-positive pid/tid", i)
		}
		if e.TS < 0 {
			return fmt.Errorf("chrome trace: event %d has negative timestamp", i)
		}
		if e.Ph != "M" {
			real++
		}
	}
	if real == 0 {
		return fmt.Errorf("chrome trace: only metadata events")
	}
	return nil
}
