package obs

import "context"

// ridKey is the context key for request IDs.
type ridKey struct{}

// WithRequestID returns a context carrying the request ID. kmserved
// stamps one per HTTP request and threads it through MapAllContext so
// every log line of a batch can be correlated.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID extracts the request ID, if any.
func RequestID(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(ridKey{}).(string)
	return id, ok
}

// traceKey is the context key for the trace-request flag.
type traceKey struct{}

// WithTraceRequest marks the context as belonging to a sampled query:
// the server/client wire layer turns the flag into the X-Km-Trace
// header, so a coordinator's sampling decision propagates to every
// worker RPC of the fan-out without new plumbing through call
// signatures.
func WithTraceRequest(ctx context.Context) context.Context {
	return context.WithValue(ctx, traceKey{}, true)
}

// TraceRequested reports whether the context carries the sampled flag.
func TraceRequested(ctx context.Context) bool {
	on, _ := ctx.Value(traceKey{}).(bool)
	return on
}
