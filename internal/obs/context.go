package obs

import "context"

// ridKey is the context key for request IDs.
type ridKey struct{}

// WithRequestID returns a context carrying the request ID. kmserved
// stamps one per HTTP request and threads it through MapAllContext so
// every log line of a batch can be correlated.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID extracts the request ID, if any.
func RequestID(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(ridKey{}).(string)
	return id, ok
}
