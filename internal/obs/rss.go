package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// PeakRSS reads the process high-water resident set (VmHWM) from
// /proc/self/status, in bytes. On platforms without procfs it falls
// back to the Go runtime's total obtained-from-OS bytes, which at least
// bounds the footprint. Both kmbench reports and kmgen's streaming
// build mode record it, so memory claims in benchmark artifacts are
// measured, not asserted.
func PeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			rest, ok := strings.CutPrefix(line, "VmHWM:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
