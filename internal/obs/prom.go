package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// WriteCounter emits one counter metric with its HELP/TYPE header.
func WriteCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WriteGauge emits one gauge metric with its HELP/TYPE header.
func WriteGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// WriteGaugeFloat emits one float-valued gauge with its HELP/TYPE
// header (burn rates and targets are ratios, not integers).
func WriteGaugeFloat(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
}

// WriteHistogramMeta emits the HELP/TYPE header of a histogram metric;
// the per-label series follow via Histogram.WritePrometheus.
func WriteHistogramMeta(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promTypes are the metric types the exposition format allows.
var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ValidateExposition checks that r is well-formed Prometheus text
// exposition (version 0.0.4): every line is blank, a # HELP/# TYPE/#
// comment, or a sample `name{labels} value [timestamp]`; metric and
// label names are legal; values parse as floats (+Inf/-Inf/NaN
// allowed); every sample's metric has a preceding # TYPE (histogram
// samples may use the base name of their _bucket/_sum/_count series);
// a metric name is never re-declared with a conflicting TYPE; every
// histogram that emits _bucket series emits the mandatory le="+Inf"
// bucket; and at least one sample is present. It is deliberately a
// line-format validator, not a full parser — enough for the obs-smoke
// test to catch a malformed /metrics endpoint without external
// dependencies.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	typed := make(map[string]string)
	bucketed := make(map[string]bool) // histogram base -> saw le="+Inf"
	samples := 0
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !promNameRe.MatchString(name) {
				return fmt.Errorf("line %d: malformed HELP line %q", ln, line)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			typ = strings.TrimSpace(typ)
			if !found || !promNameRe.MatchString(name) || !promTypes[typ] {
				return fmt.Errorf("line %d: malformed TYPE line %q", ln, line)
			}
			if prev, seen := typed[name]; seen && prev != typ {
				return fmt.Errorf("line %d: metric %q re-declared as %s (previously %s)", ln, name, typ, prev)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // plain comment
		}
		name, err := validateSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		if !sampleTyped(typed, name) {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", ln, name)
		}
		if base, ok := strings.CutSuffix(name, "_bucket"); ok && typed[base] == "histogram" {
			if inf := bucketed[base]; !inf {
				bucketed[base] = strings.Contains(line, `le="+Inf"`)
			}
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	for base, sawInf := range bucketed {
		if !sawInf {
			return fmt.Errorf("histogram %q emits buckets but no le=\"+Inf\" bucket", base)
		}
	}
	return nil
}

// sampleTyped reports whether the sample name (or, for histogram and
// summary series, its base name) has a TYPE declaration.
func sampleTyped(typed map[string]string, name string) bool {
	if _, ok := typed[name]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if t := typed[base]; t == "histogram" || t == "summary" {
			return true
		}
	}
	return false
}

// validateSample checks one sample line and returns the metric name.
func validateSample(line string) (string, error) {
	rest := line
	name := rest
	if i := strings.IndexAny(rest, "{ "); i >= 0 {
		name = rest[:i]
		rest = rest[i:]
	} else {
		rest = ""
	}
	if !promNameRe.MatchString(name) {
		return "", fmt.Errorf("bad metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", fmt.Errorf("unterminated label block in %q", line)
		}
		if err := validateLabels(rest[1:end]); err != nil {
			return "", fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("want `value [timestamp]` after name in %q", line)
	}
	if !validFloat(fields[0]) {
		return "", fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, nil
}

// validateLabels checks a comma-separated `name="value"` list (the
// inside of a label block). Escaped quotes inside values are handled.
func validateLabels(s string) error {
	s = strings.TrimSuffix(strings.TrimSpace(s), ",")
	for s != "" {
		name, rest, found := strings.Cut(s, "=")
		if !found || !promLabelRe.MatchString(strings.TrimSpace(name)) {
			return fmt.Errorf("bad label name")
		}
		rest = strings.TrimSpace(rest)
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value")
		}
		// Find the closing quote, skipping \" escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value")
		}
		s = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// validFloat accepts what the exposition format accepts as a value.
func validFloat(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
