package bwtmatch

import "context"

// Matcher is the search surface shared by the monolithic *Index and the
// partitioned *ShardedIndex: everything a caller needs to run
// k-mismatch queries, map results to reference coordinates and account
// for memory, without knowing how the target is laid out. kmsearch and
// the kmserved registry operate on Matcher, so a saved index file is
// interchangeable between the two layouts (LoadAnyFile dispatches on
// the container magic).
//
// The sharded implementation adds one restriction: patterns longer than
// its build-time MaxPatternLen are rejected with ErrInput.
type Matcher interface {
	// Len returns the indexed target length in bases.
	Len() int
	// SizeBytes estimates the resident size of the index structures.
	SizeBytes() int
	// Refs returns the reference table; nil for single-sequence indexes.
	Refs() []Ref
	// Resolve maps a target window [pos, pos+length) to reference
	// coordinates; ok is false if it crosses a reference boundary.
	Resolve(pos, length int) (ref string, refPos int, ok bool)

	// Search finds all k-mismatch occurrences with Algorithm A.
	Search(pattern []byte, k int) ([]Match, error)
	// SearchMethod runs one of the implemented matchers.
	SearchMethod(pattern []byte, k int, method Method) ([]Match, Stats, error)
	// SearchMethodTraced is SearchMethod with per-phase telemetry.
	SearchMethodTraced(pattern []byte, k int, method Method, tr Tracer) ([]Match, Stats, error)
	// SearchMethodScratch is SearchMethod with caller-managed memory
	// (BWT-path methods only).
	SearchMethodScratch(sc *Scratch, dst []Match, pattern []byte, k int, method Method) ([]Match, Stats, error)
	// SearchBest finds the minimum-distance stratum up to maxK.
	SearchBest(pattern []byte, maxK int) (int, []Match, error)
	// MapAllContext runs a query batch across workers goroutines.
	MapAllContext(ctx context.Context, queries []Query, method Method, workers int) []Result
}

// Compile-time checks that both index layouts satisfy Matcher.
var (
	_ Matcher = (*Index)(nil)
	_ Matcher = (*ShardedIndex)(nil)
)
