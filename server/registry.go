package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bwtmatch"
)

// ErrNotFound reports a search against an unregistered index name.
var ErrNotFound = errors.New("server: index not found")

// ErrExists reports a duplicate registration.
var ErrExists = errors.New("server: index already registered")

// entry is one registered index. Indexes are immutable, so an entry
// evicted from the registry stays valid for searches already holding it;
// the GC reclaims it when the last in-flight batch finishes. That is
// also why eviction never calls Close on a ShardedIndex: an in-flight
// batch may still materialize shards lazily from the backing file, so
// the file handle must outlive the registry entry (the finalizer-free
// design accepts the descriptor leak until the GC collects the index;
// kmserved registers long-lived indexes, so in practice none leak).
type entry struct {
	name  string
	idx   bwtmatch.Matcher
	bytes int64
	// lastUsed orders entries for LRU eviction: a global sequence number
	// stamped on every Get, so lookups stay on the RLock fast path.
	lastUsed atomic.Int64
	queries  atomic.Int64
}

// Registry is a named collection of loaded indexes with an LRU byte
// budget. Lookups take the read lock and bump an atomic recency stamp;
// only registration and eviction take the write lock.
type Registry struct {
	budget int64 // bytes; 0 = unlimited
	clock  atomic.Int64

	mu       sync.RWMutex
	entries  map[string]*entry
	resident int64

	// onEvict, when set, observes evictions (used for metrics).
	onEvict func(name string)
}

// NewRegistry creates a registry with the given byte budget (0 for
// unlimited). The budget counts index structures plus the packed text,
// as reported by Index.SizeBytes and Index.Len.
func NewRegistry(budget int64) *Registry {
	return &Registry{budget: budget, entries: make(map[string]*entry)}
}

// indexBytes estimates the resident cost of one index. A sharded
// index's SizeBytes already includes each shard's packed text, so
// adding Len would double-count; the monolithic SizeBytes excludes the
// text, so its cost is SizeBytes plus Len.
func indexBytes(idx bwtmatch.Matcher) int64 {
	if _, ok := idx.(*bwtmatch.ShardedIndex); ok {
		return int64(idx.SizeBytes())
	}
	return int64(idx.SizeBytes()) + int64(idx.Len())
}

// Add registers idx under name, evicting least-recently-used entries if
// the budget would be exceeded. Registering an existing name fails with
// ErrExists (evict first to replace).
func (r *Registry) Add(name string, idx bwtmatch.Matcher) error {
	if name == "" {
		return fmt.Errorf("server: empty index name")
	}
	cost := indexBytes(idx)
	if r.budget > 0 && cost > r.budget {
		return fmt.Errorf("server: index %q (%d bytes) exceeds registry budget (%d bytes)", name, cost, r.budget)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	r.evictLocked(cost)
	e := &entry{name: name, idx: idx, bytes: cost}
	e.lastUsed.Store(r.clock.Add(1))
	r.entries[name] = e
	r.resident += cost
	return nil
}

// evictLocked drops LRU entries until incoming more bytes fit the
// budget. Caller holds the write lock.
func (r *Registry) evictLocked(incoming int64) {
	if r.budget <= 0 {
		return
	}
	for r.resident+incoming > r.budget && len(r.entries) > 0 {
		var lru *entry
		for _, e := range r.entries {
			if lru == nil || e.lastUsed.Load() < lru.lastUsed.Load() {
				lru = e
			}
		}
		delete(r.entries, lru.name)
		r.resident -= lru.bytes
		if r.onEvict != nil {
			r.onEvict(lru.name)
		}
	}
}

// LoadFile reads a saved index from path — monolithic or sharded, the
// container magic decides — and registers it under name. Sharded
// indexes load lazily: registration reads only the manifest, and each
// shard materializes from the file on first search.
func (r *Registry) LoadFile(name, path string) (bwtmatch.Matcher, error) {
	idx, err := bwtmatch.LoadAnyFile(path)
	if err != nil {
		// %w keeps bwtmatch.ErrFormat matchable while recording which
		// registration failed (kmvet: wrapformat).
		return nil, fmt.Errorf("server: loading index %q from %s: %w", name, path, err)
	}
	if err := r.Add(name, idx); err != nil {
		return nil, err
	}
	return idx, nil
}

// Replace swaps the index registered under name with idx, refreshing
// the LRU cost accounting — an appended container grows, so the
// entry's recorded bytes must grow with it or the budget drifts. The
// query counter carries over; recency is refreshed. A name not yet
// registered is added. The displaced index is not Closed, for the same
// reason eviction never Closes (see entry): in-flight batches may still
// hold it.
func (r *Registry) Replace(name string, idx bwtmatch.Matcher) error {
	if name == "" {
		return fmt.Errorf("server: empty index name")
	}
	cost := indexBytes(idx)
	if r.budget > 0 && cost > r.budget {
		return fmt.Errorf("server: index %q (%d bytes) exceeds registry budget (%d bytes)", name, cost, r.budget)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, existed := r.entries[name]
	if existed {
		delete(r.entries, name)
		r.resident -= old.bytes
	}
	r.evictLocked(cost)
	e := &entry{name: name, idx: idx, bytes: cost}
	if existed {
		e.queries.Store(old.queries.Load())
	}
	e.lastUsed.Store(r.clock.Add(1))
	r.entries[name] = e
	r.resident += cost
	return nil
}

// ReloadFile re-reads the container at path and swaps it in under name
// — the hot-reload path after `kmgen -append` grew a container on disk.
// Searches in flight keep the old index; new lookups see the new one.
func (r *Registry) ReloadFile(name, path string) (bwtmatch.Matcher, error) {
	idx, err := bwtmatch.LoadAnyFile(path)
	if err != nil {
		// %w keeps bwtmatch.ErrFormat matchable while recording which
		// reload failed (kmvet: wrapformat).
		return nil, fmt.Errorf("server: reloading index %q from %s: %w", name, path, err)
	}
	if err := r.Replace(name, idx); err != nil {
		return nil, err
	}
	return idx, nil
}

// Get returns the index registered under name, refreshing its LRU
// recency, or ErrNotFound.
func (r *Registry) Get(name string) (bwtmatch.Matcher, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.lastUsed.Store(r.clock.Add(1))
	e.queries.Add(1)
	return e.idx, nil
}

// Remove evicts the named index; it reports whether it was present.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return false
	}
	delete(r.entries, name)
	r.resident -= e.bytes
	if r.onEvict != nil {
		r.onEvict(name)
	}
	return true
}

// List snapshots the registered indexes sorted by name.
func (r *Registry) List() []IndexInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]IndexInfo, 0, len(r.entries))
	for _, e := range r.entries {
		info := IndexInfo{
			Name:      e.name,
			Bases:     e.idx.Len(),
			SizeBytes: e.idx.SizeBytes(),
			Refs:      len(e.idx.Refs()),
			Queries:   e.queries.Load(),
		}
		if sx, ok := e.idx.(*bwtmatch.ShardedIndex); ok {
			shards := sx.ShardInfo()
			info.Shards = len(shards)
			info.ShardBytes = make([]int64, len(shards))
			for i, s := range shards {
				info.ShardBytes[i] = s.Bytes
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// shardSeries is one sharded entry's telemetry snapshot for /metrics.
type shardSeries struct {
	name string
	info []bwtmatch.ShardInfo
}

// shardSnapshot collects per-shard telemetry for every registered
// sharded index, sorted by name. Monolithic entries are skipped.
func (r *Registry) shardSnapshot() []shardSeries {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []shardSeries
	for _, e := range r.entries {
		if sx, ok := e.idx.(*bwtmatch.ShardedIndex); ok {
			out = append(out, shardSeries{name: e.name, info: sx.ShardInfo()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Resident returns the current byte footprint of registered indexes.
func (r *Registry) Resident() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.resident
}

// Budget returns the configured byte budget (0 = unlimited).
func (r *Registry) Budget() int64 { return r.budget }

// Len returns the number of registered indexes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
