package server

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bwtmatch"
)

// ErrNotFound reports a search against an unregistered index name.
var ErrNotFound = errors.New("server: index not found")

// ErrExists reports a duplicate registration.
var ErrExists = errors.New("server: index already registered")

// entry is one registered index. Indexes are immutable, so an entry
// evicted from the registry stays valid for searches already holding it;
// the GC reclaims it when the last in-flight batch finishes. That is
// also why eviction never calls Close on a ShardedIndex: an in-flight
// batch may still materialize shards lazily from the backing file, so
// the file handle must outlive the registry entry (the finalizer-free
// design accepts the descriptor leak until the GC collects the index;
// kmserved registers long-lived indexes, so in practice none leak).
type entry struct {
	name  string
	idx   bwtmatch.Matcher
	bytes int64
	// baseKey, when hasBase is set, points at the shared base this
	// relative tenant retains; releasing the entry releases the base.
	baseKey [sha256.Size]byte
	hasBase bool
	// lastUsed orders entries for LRU eviction: a global sequence number
	// stamped on every Get, so lookups stay on the RLock fast path.
	lastUsed atomic.Int64
	queries  atomic.Int64
}

// baseEntry is one shared base index, keyed by BWT fingerprint and
// refcounted by its live tenants. Bases are not registry entries: they
// are never LRU-evicted directly (a base pinned by live tenants cannot
// disappear under them) and are freed exactly when the last tenant
// referencing them is evicted, removed, or replaced.
type baseEntry struct {
	idx     *bwtmatch.Index
	bytes   int64
	tenants int
}

// Registry is a named collection of loaded indexes with an LRU byte
// budget. Lookups take the read lock and bump an atomic recency stamp;
// only registration and eviction take the write lock.
type Registry struct {
	budget int64 // bytes; 0 = unlimited
	clock  atomic.Int64

	mu       sync.RWMutex
	entries  map[string]*entry
	bases    map[[sha256.Size]byte]*baseEntry
	resident int64

	// onEvict, when set, observes evictions (used for metrics).
	onEvict func(name string)
}

// NewRegistry creates a registry with the given byte budget (0 for
// unlimited). The budget counts index structures plus the packed text,
// as reported by Index.SizeBytes and Index.Len.
func NewRegistry(budget int64) *Registry {
	return &Registry{
		budget:  budget,
		entries: make(map[string]*entry),
		bases:   make(map[[sha256.Size]byte]*baseEntry),
	}
}

// indexBytes estimates the resident cost of one index. A sharded
// index's SizeBytes already includes each shard's packed text, so
// adding Len would double-count; the monolithic SizeBytes excludes the
// text, so its cost is SizeBytes plus Len. A relative tenant is charged
// only its delta — the shared base is accounted once, in its baseEntry.
func indexBytes(idx bwtmatch.Matcher) int64 {
	switch x := idx.(type) {
	case *bwtmatch.ShardedIndex:
		return int64(x.SizeBytes())
	case *bwtmatch.RelativeIndex:
		return int64(x.DeltaBytes())
	}
	return int64(idx.SizeBytes()) + int64(idx.Len())
}

// retainBaseLocked records a relative tenant's hold on its shared base,
// registering the base (and charging its bytes to resident) on first
// use. It returns the base key to stamp on the tenant's entry. Caller
// holds the write lock.
func (r *Registry) retainBaseLocked(rx *bwtmatch.RelativeIndex) [sha256.Size]byte {
	key := rx.BaseFingerprint()
	be, ok := r.bases[key]
	if !ok {
		be = &baseEntry{idx: rx.Base(), bytes: indexBytes(rx.Base())}
		r.bases[key] = be
		r.resident += be.bytes
	}
	be.tenants++
	return key
}

// releaseBaseLocked drops one tenant's hold on its base, freeing the
// base (and its resident bytes) when the last tenant goes. Caller holds
// the write lock.
func (r *Registry) releaseBaseLocked(e *entry) {
	if !e.hasBase {
		return
	}
	be, ok := r.bases[e.baseKey]
	if !ok {
		return
	}
	be.tenants--
	if be.tenants <= 0 {
		delete(r.bases, e.baseKey)
		r.resident -= be.bytes
	}
}

// SharedBase returns the in-memory base index matching fp, if some
// registered tenant already retains it. The registry's LoadFile uses it
// so N tenants of one base share a single copy.
func (r *Registry) SharedBase(fp [sha256.Size]byte) (*bwtmatch.Index, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	be, ok := r.bases[fp]
	if !ok {
		return nil, false
	}
	return be.idx, true
}

// Add registers idx under name, evicting least-recently-used entries if
// the budget would be exceeded. Registering an existing name fails with
// ErrExists (evict first to replace).
func (r *Registry) Add(name string, idx bwtmatch.Matcher) error {
	if name == "" {
		return fmt.Errorf("server: empty index name")
	}
	cost := indexBytes(idx)
	rx, isRel := idx.(*bwtmatch.RelativeIndex)
	full := cost
	if isRel {
		// A tenant whose base is not yet resident brings the base along;
		// the budget must admit both together.
		if _, shared := r.SharedBase(rx.BaseFingerprint()); !shared {
			full += indexBytes(rx.Base())
		}
	}
	if r.budget > 0 && full > r.budget {
		return fmt.Errorf("server: index %q (%d bytes) exceeds registry budget (%d bytes)", name, full, r.budget)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	e := &entry{name: name, idx: idx, bytes: cost}
	if isRel {
		// Retain before evicting: the base now has a live hold, so
		// evicting sibling tenants to make room cannot free it.
		e.baseKey = r.retainBaseLocked(rx)
		e.hasBase = true
	}
	r.evictLocked(cost)
	e.lastUsed.Store(r.clock.Add(1))
	r.entries[name] = e
	r.resident += cost
	return nil
}

// evictLocked drops LRU entries until incoming more bytes fit the
// budget. Caller holds the write lock.
func (r *Registry) evictLocked(incoming int64) {
	if r.budget <= 0 {
		return
	}
	for r.resident+incoming > r.budget && len(r.entries) > 0 {
		var lru *entry
		for _, e := range r.entries {
			if lru == nil || e.lastUsed.Load() < lru.lastUsed.Load() {
				lru = e
			}
		}
		delete(r.entries, lru.name)
		r.resident -= lru.bytes
		r.releaseBaseLocked(lru)
		if r.onEvict != nil {
			r.onEvict(lru.name)
		}
	}
}

// loadShared loads a container of any layout, reusing an already
// resident base when a relative container's fingerprint matches one —
// the sharing that makes N tenants cost one base plus N deltas.
func (r *Registry) loadShared(path string) (bwtmatch.Matcher, error) {
	if hdr, ok, err := bwtmatch.SniffRelative(path); err == nil && ok {
		if base, shared := r.SharedBase(hdr.BaseFingerprint); shared {
			return bwtmatch.LoadRelativeFile(path, base)
		}
		return bwtmatch.LoadRelativeFile(path, nil)
	}
	return bwtmatch.LoadAnyFile(path)
}

// LoadFile reads a saved index from path — monolithic, sharded, or
// relative, the container magic decides — and registers it under name.
// Sharded indexes load lazily: registration reads only the manifest,
// and each shard materializes from the file on first search. Relative
// containers resolve their base from the stored path hint, or share an
// already registered tenant's base when the fingerprints match.
func (r *Registry) LoadFile(name, path string) (bwtmatch.Matcher, error) {
	idx, err := r.loadShared(path)
	if err != nil {
		// %w keeps bwtmatch.ErrFormat matchable while recording which
		// registration failed (kmvet: wrapformat).
		return nil, fmt.Errorf("server: loading index %q from %s: %w", name, path, err)
	}
	if err := r.Add(name, idx); err != nil {
		return nil, err
	}
	return idx, nil
}

// Replace swaps the index registered under name with idx, refreshing
// the LRU cost accounting — an appended container grows, so the
// entry's recorded bytes must grow with it or the budget drifts. The
// query counter carries over; recency is refreshed. A name not yet
// registered is added. The displaced index is not Closed, for the same
// reason eviction never Closes (see entry): in-flight batches may still
// hold it.
func (r *Registry) Replace(name string, idx bwtmatch.Matcher) error {
	if name == "" {
		return fmt.Errorf("server: empty index name")
	}
	cost := indexBytes(idx)
	if r.budget > 0 && cost > r.budget {
		return fmt.Errorf("server: index %q (%d bytes) exceeds registry budget (%d bytes)", name, cost, r.budget)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, existed := r.entries[name]
	if existed {
		delete(r.entries, name)
		r.resident -= old.bytes
	}
	e := &entry{name: name, idx: idx, bytes: cost}
	if rx, ok := idx.(*bwtmatch.RelativeIndex); ok {
		e.baseKey = r.retainBaseLocked(rx)
		e.hasBase = true
	}
	if existed {
		// Release the displaced entry's base only after retaining the
		// replacement's: a same-base swap keeps the base resident.
		r.releaseBaseLocked(old)
	}
	r.evictLocked(cost)
	if existed {
		e.queries.Store(old.queries.Load())
	}
	e.lastUsed.Store(r.clock.Add(1))
	r.entries[name] = e
	r.resident += cost
	return nil
}

// ReloadFile re-reads the container at path and swaps it in under name
// — the hot-reload path after `kmgen -append` grew a container on disk.
// Searches in flight keep the old index; new lookups see the new one.
func (r *Registry) ReloadFile(name, path string) (bwtmatch.Matcher, error) {
	idx, err := r.loadShared(path)
	if err != nil {
		// %w keeps bwtmatch.ErrFormat matchable while recording which
		// reload failed (kmvet: wrapformat).
		return nil, fmt.Errorf("server: reloading index %q from %s: %w", name, path, err)
	}
	if err := r.Replace(name, idx); err != nil {
		return nil, err
	}
	return idx, nil
}

// Get returns the index registered under name, refreshing its LRU
// recency, or ErrNotFound.
func (r *Registry) Get(name string) (bwtmatch.Matcher, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.lastUsed.Store(r.clock.Add(1))
	e.queries.Add(1)
	return e.idx, nil
}

// Remove evicts the named index; it reports whether it was present.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return false
	}
	delete(r.entries, name)
	r.resident -= e.bytes
	r.releaseBaseLocked(e)
	if r.onEvict != nil {
		r.onEvict(name)
	}
	return true
}

// List snapshots the registered indexes sorted by name.
func (r *Registry) List() []IndexInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]IndexInfo, 0, len(r.entries))
	for _, e := range r.entries {
		info := IndexInfo{
			Name:      e.name,
			Bases:     e.idx.Len(),
			SizeBytes: e.idx.SizeBytes(),
			Refs:      len(e.idx.Refs()),
			Queries:   e.queries.Load(),
		}
		if sx, ok := e.idx.(*bwtmatch.ShardedIndex); ok {
			shards := sx.ShardInfo()
			info.Shards = len(shards)
			info.ShardBytes = make([]int64, len(shards))
			for i, s := range shards {
				info.ShardBytes[i] = s.Bytes
			}
		}
		if rx, ok := e.idx.(*bwtmatch.RelativeIndex); ok {
			info.Base = baseID(e.baseKey)
			info.DeltaBytes = int64(rx.DeltaBytes())
			if be, ok := r.bases[e.baseKey]; ok {
				info.SharedBaseBytes = be.bytes
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// baseID renders a base fingerprint as the short stable identifier used
// in /v1/indexes and metric labels.
func baseID(fp [sha256.Size]byte) string { return fmt.Sprintf("%x", fp[:6]) }

// relBaseSeries is one shared base's telemetry snapshot for /metrics.
type relBaseSeries struct {
	base    string
	tenants int
	bytes   int64
}

// relTenantSeries is one relative tenant's telemetry snapshot.
type relTenantSeries struct {
	name        string
	base        string
	deltaBytes  int64
	baseHits    int64
	corrections int64
}

// relativeSnapshot collects the multi-tenant telemetry: one row per
// shared base (tenant count, resident bytes) and one per relative
// tenant (delta bytes, base-hit vs delta-correction read split), each
// sorted for stable exposition order.
func (r *Registry) relativeSnapshot() ([]relBaseSeries, []relTenantSeries) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bases := make([]relBaseSeries, 0, len(r.bases))
	for fp, be := range r.bases {
		bases = append(bases, relBaseSeries{base: baseID(fp), tenants: be.tenants, bytes: be.bytes})
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i].base < bases[j].base })
	var tenants []relTenantSeries
	for _, e := range r.entries {
		rx, ok := e.idx.(*bwtmatch.RelativeIndex)
		if !ok {
			continue
		}
		hits, corr := rx.DeltaCounters()
		tenants = append(tenants, relTenantSeries{
			name:        e.name,
			base:        baseID(e.baseKey),
			deltaBytes:  int64(rx.DeltaBytes()),
			baseHits:    hits,
			corrections: corr,
		})
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	return bases, tenants
}

// shardSeries is one sharded entry's telemetry snapshot for /metrics.
type shardSeries struct {
	name string
	info []bwtmatch.ShardInfo
}

// shardSnapshot collects per-shard telemetry for every registered
// sharded index, sorted by name. Monolithic entries are skipped.
func (r *Registry) shardSnapshot() []shardSeries {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []shardSeries
	for _, e := range r.entries {
		if sx, ok := e.idx.(*bwtmatch.ShardedIndex); ok {
			out = append(out, shardSeries{name: e.name, info: sx.ShardInfo()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Resident returns the current byte footprint of registered indexes.
func (r *Registry) Resident() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.resident
}

// Budget returns the configured byte budget (0 = unlimited).
func (r *Registry) Budget() int64 { return r.budget }

// Len returns the number of registered indexes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
