package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bwtmatch"
	"bwtmatch/internal/obs"
	"bwtmatch/internal/seqio"
)

// Config tunes a Server. The zero value is usable; see the field
// comments for the defaults applied by New.
type Config struct {
	// Workers is the fan-out width per batch (default GOMAXPROCS via
	// bwtmatch.MapAll semantics; 0 means 4).
	Workers int
	// MaxBatch caps reads per request (default 4096).
	MaxBatch int
	// MaxK caps the per-read mismatch budget (default 64).
	MaxK int
	// MaxConcurrent caps batches executing simultaneously; further
	// requests queue until a slot frees (default 16).
	MaxConcurrent int
	// DefaultTimeout bounds a request that sets no timeout_ms
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxBodyBytes caps request body size (default 64 MiB).
	MaxBodyBytes int64
	// Budget is the registry's LRU byte budget (0 = unlimited).
	Budget int64
	// BuildWorkers parallelizes index construction for indexes built by
	// the server from raw sequence (RegisterGenome, kmserved
	// -load-genome); loading a pre-built index file is unaffected.
	// Default 1 (serial); see bwtmatch.WithBuildWorkers.
	BuildWorkers int
	// Logger receives structured request logs; nil discards them. Every
	// search batch logs one line carrying the request ID that is also
	// threaded through the batch's context (obs.WithRequestID).
	Logger *slog.Logger
	// EnableDebug mounts net/http/pprof under /debug/pprof/ and a
	// runtime stats endpoint at /debug/stats. Off by default: these
	// endpoints expose internals and cost memory to serve, so they are
	// opt-in (kmserved -debug).
	EnableDebug bool
	// SLO declares the tier's service-level objectives; the zero value
	// applies the obs defaults (100ms @ 99%, 99.9% availability). The
	// km_slo_* series on /metrics are computed against it.
	SLO obs.SLOConfig
	// WarmIndexes forces every shard of a registered sharded index to
	// materialize in the background at registration time (kmserved
	// -warm). While any warm-up is running /readyz reports 503, so a
	// fleet scheduler routes traffic around the worker until its shards
	// are resident instead of paying lazy-load latency on first search.
	WarmIndexes bool
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxK <= 0 {
		c.MaxK = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.BuildWorkers <= 0 {
		c.BuildWorkers = 1
	}
}

// Server is the kmserved HTTP service: an index registry, a batched
// search endpoint, and metrics. Create with New, mount via Handler, and
// stop with Shutdown (drains in-flight searches, refuses new ones).
type Server struct {
	cfg    Config
	reg    *Registry
	met    *Metrics
	mux    *http.ServeMux
	sem    chan struct{} // MaxConcurrent slots
	log    *slog.Logger
	start  time.Time
	reqID  atomic.Int64 // request ID sequence
	flight *obs.FlightRecorder
	slo    *obs.SLO

	mu       sync.Mutex
	draining bool
	inflight int // in-flight search batches
	// drained closes once draining is set and inflight reaches zero;
	// Shutdown selects on it against its context, so no waiter
	// goroutine is ever spawned (kmvet goroutinelifecycle).
	drained       chan struct{}
	drainedClosed bool

	// warming counts in-flight background shard warm-ups; /readyz
	// reports 503 while it is nonzero. warmCtx bounds those warm-ups:
	// Shutdown cancels it so a stopping server never strands a
	// goroutine materializing shards nobody will search.
	warming    atomic.Int64
	warmCtx    context.Context
	warmCancel context.CancelFunc

	// testHookSearchStart, when non-nil, runs at the top of every search
	// batch while it counts as in-flight (used by the drain test).
	testHookSearchStart func()
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg.applyDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(cfg.Budget),
		met:     NewMetrics(),
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		log:     cfg.Logger,
		start:   time.Now(),
		drained: make(chan struct{}),
		flight:  obs.NewFlightRecorder(64, 16, []string{"queue", "search"}),
	}
	s.slo = obs.NewSLO(cfg.SLO, s.met.LatencySource(), obs.DefaultLatencyBounds())
	s.warmCtx, s.warmCancel = context.WithCancel(context.Background())
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.reg.onEvict = func(name string) {
		s.met.IndexesEvicted.Add(1)
		s.log.Info("index evicted", "index", name)
	}
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("GET /v1/indexes", s.handleListIndexes)
	s.mux.HandleFunc("POST /v1/indexes", s.handleRegisterIndex)
	s.mux.HandleFunc("DELETE /v1/indexes/{name}", s.handleRemoveIndex)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.met.ServeJSON)
	// The flight recorder is always on (recording is allocation-free),
	// so its endpoint is too — unlike pprof it serves a bounded, cheap
	// snapshot and is exactly the thing wanted when debug wasn't enabled.
	s.mux.Handle("GET /debug/flightrecorder", s.flight)
	if cfg.EnableDebug {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		s.mux.HandleFunc("GET /debug/stats", s.handleDebugStats)
	}
	return s
}

// handleDebugStats reports point-in-time Go runtime statistics (the
// /debug/vars-style endpoint, but per-Server and read-only).
func (s *Server) handleDebugStats(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds":  time.Since(s.start).Seconds(),
		"goroutines":      runtime.NumGoroutine(),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
		"go_version":      runtime.Version(),
		"heap_alloc":      ms.HeapAlloc,
		"heap_sys":        ms.HeapSys,
		"sys":             ms.Sys,
		"num_gc":          ms.NumGC,
		"pause_total_ms":  float64(ms.PauseTotalNs) / 1e6,
		"next_gc":         ms.NextGC,
		"resident_bytes":  s.reg.Resident(),
		"indexes_loaded":  s.met.IndexesLoaded.Load(),
		"indexes_evicted": s.met.IndexesEvicted.Load(),
	})
}

// Handler returns the HTTP handler tree for mounting into an
// http.Server (or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the index registry (for preloading at startup).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.met }

// Register loads a saved index file and counts it in the metrics; it is
// the programmatic form of POST /v1/indexes.
func (s *Server) Register(name, path string) error {
	idx, err := s.reg.LoadFile(name, path)
	if err != nil {
		return err
	}
	s.met.IndexesLoaded.Add(1)
	s.log.Info("index registered", "index", name, "path", path)
	s.maybeWarm(name, idx)
	return nil
}

// Reload re-reads the container at path and swaps it in under name,
// refreshing the registry's cost accounting — the hot-reload path after
// `kmgen -append` grew a container on disk (kmserved wires it to
// SIGHUP). In-flight searches finish on the old index; new ones see the
// new shards.
func (s *Server) Reload(name, path string) error {
	idx, err := s.reg.ReloadFile(name, path)
	if err != nil {
		return err
	}
	s.met.IndexesLoaded.Add(1)
	shards := 0
	if sx, ok := idx.(*bwtmatch.ShardedIndex); ok {
		shards = sx.Shards()
	}
	s.log.Info("index reloaded", "index", name, "path", path, "bytes", idx.SizeBytes(), "shards", shards)
	s.maybeWarm(name, idx)
	return nil
}

// maybeWarm starts a background warm-up for a sharded index when
// Config.WarmIndexes is set: every lazily deferred shard materializes
// now rather than on first search, and /readyz reports 503 until all
// in-flight warm-ups finish. Failures are logged, not fatal — the
// affected shard will retry (and fail the same way) on first search.
func (s *Server) maybeWarm(name string, idx bwtmatch.Matcher) {
	if !s.cfg.WarmIndexes {
		return
	}
	sx, ok := idx.(*bwtmatch.ShardedIndex)
	if !ok {
		return
	}
	s.warming.Add(1)
	go func() {
		defer s.warming.Add(-1)
		start := time.Now()
		// Bounded by warmCtx: Shutdown cancels it, so the goroutine
		// stops between shards instead of outliving the server.
		if err := sx.LoadAllContext(s.warmCtx); err != nil {
			s.log.Warn("index warm-up failed", "index", name, "error", err)
			return
		}
		s.log.Info("index warmed", "index", name, "shards", sx.Shards(),
			"elapsed_ms", float64(time.Since(start))/float64(time.Millisecond))
	}()
}

// Ready reports whether the server is accepting and fully warmed (the
// /readyz condition).
func (s *Server) Ready() bool {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return !draining && s.warming.Load() == 0
}

// RegisterGenome reads a FASTA/FASTQ genome file, builds an index over
// it (across Config.BuildWorkers goroutines) and registers it under
// name. Ambiguous bases are sanitized to 'a' as in kmsearch.
func (s *Server) RegisterGenome(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := seqio.NewReader(f).ReadAll()
	if err != nil {
		return fmt.Errorf("reading %q: %w", path, err)
	}
	refs := make([]bwtmatch.Reference, len(recs))
	sanitized := 0
	for i, rec := range recs {
		clean, n := bwtmatch.Sanitize(rec.Seq)
		sanitized += n
		refs[i] = bwtmatch.Reference{Name: rec.ID, Seq: clean}
	}
	idx, err := bwtmatch.NewRefs(refs, bwtmatch.WithBuildWorkers(s.cfg.BuildWorkers))
	if err != nil {
		return fmt.Errorf("building index for %q: %w", path, err)
	}
	if err := s.reg.Add(name, idx); err != nil {
		return err
	}
	s.met.IndexesLoaded.Add(1)
	s.log.Info("genome registered", "index", name, "path", path,
		"bases", idx.Len(), "sanitized", sanitized, "build_workers", s.cfg.BuildWorkers)
	return nil
}

// RegisterIndex registers an already-built index — monolithic or
// sharded — under name.
func (s *Server) RegisterIndex(name string, idx bwtmatch.Matcher) error {
	if err := s.reg.Add(name, idx); err != nil {
		return err
	}
	s.met.IndexesLoaded.Add(1)
	shards := 0
	if sx, ok := idx.(*bwtmatch.ShardedIndex); ok {
		shards = sx.Shards()
	}
	s.log.Info("index registered", "index", name, "bytes", idx.SizeBytes(), "shards", shards)
	s.maybeWarm(name, idx)
	return nil
}

// Shutdown stops accepting searches and waits for in-flight batches to
// drain, or until ctx expires. It is idempotent. Callers running an
// http.Server should call its Shutdown as well to close listeners.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.signalDrainedLocked()
	s.mu.Unlock()
	s.warmCancel() // stop background warm-ups; nobody will search them
	// The last endSearch closes drained, so shutdown needs no waiter
	// goroutine — a ctx-aborted shutdown leaves nothing behind.
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
}

// signalDrainedLocked closes the drained channel once draining has
// begun and the last in-flight batch has finished. Caller holds s.mu.
func (s *Server) signalDrainedLocked() {
	if s.draining && s.inflight == 0 && !s.drainedClosed {
		s.drainedClosed = true
		close(s.drained)
	}
}

// beginSearch registers one in-flight batch; it fails once draining has
// started. The caller must invoke the returned func when done.
func (s *Server) beginSearch() (func(), bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.inflight++
	return s.endSearch, true
}

// endSearch retires one in-flight batch; the last one out during a
// drain closes the drained channel Shutdown is selecting on.
func (s *Server) endSearch() {
	s.mu.Lock()
	s.inflight--
	s.signalDrainedLocked()
	s.mu.Unlock()
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.failr(w, "", code, format, args...)
}

// failr is fail with the request ID echoed in the error body, for
// endpoints that have one (the search path always does; its response
// header is set before any failure can occur).
func (s *Server) failr(w http.ResponseWriter, rid string, code int, format string, args ...any) {
	s.met.RejectedTotal.Add(1)
	msg := fmt.Sprintf(format, args...)
	if rid != "" {
		s.log.Warn("request rejected", "rid", rid, "code", code, "error", msg)
	} else {
		s.log.Warn("request rejected", "code", code, "error", msg)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg, RequestID: rid})
}

// recordShed notes a refused search batch in the flight recorder and
// the SLO ring: load shedding is an availability event, and the shed
// records make "what was I refusing and when" answerable after the
// fact from /debug/flightrecorder alone.
func (s *Server) recordShed(rid, index string, reads int, arrive time.Time) {
	rec := obs.QueryRecord{
		Start:     arrive,
		RID:       rid,
		Index:     index,
		ElapsedNS: int64(time.Since(arrive)),
		Reads:     int32(reads),
		Shed:      true,
	}
	s.flight.Record(&rec)
	s.slo.Observe(time.Since(arrive), false)
}

// nextRequestID issues a per-server-unique request ID. It is stamped on
// the batch context (obs.WithRequestID) before MapAllContext fans out,
// so anything below the search — and the batch's own log line — can be
// correlated.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("req-%06d", s.reqID.Add(1))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe, split from /healthz liveness: a
// fleet scheduler keeps a worker out of rotation while it drains or
// while registered sharded indexes are still materializing in the
// background (Config.WarmIndexes), but the process itself is alive
// throughout. Retry-After hints when to re-probe.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.warming.Load() > 0:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "warming"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleListIndexes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, IndexListResponse{
		Indexes:       s.reg.List(),
		BudgetBytes:   s.reg.Budget(),
		ResidentBytes: s.reg.Resident(),
	})
}

func (s *Server) handleRegisterIndex(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeBody(r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" || req.Path == "" {
		s.fail(w, http.StatusBadRequest, "name and path are required")
		return
	}
	if err := s.Register(req.Name, req.Path); err != nil {
		switch {
		case errors.Is(err, ErrExists):
			s.fail(w, http.StatusConflict, "%v", err)
		case errors.Is(err, bwtmatch.ErrFormat):
			s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		default:
			s.fail(w, http.StatusBadRequest, "loading %q: %v", req.Path, err)
		}
		return
	}
	for _, info := range s.reg.List() {
		if info.Name == req.Name {
			writeJSON(w, http.StatusCreated, info)
			return
		}
	}
	// Unreachable unless the index was concurrently evicted; report it.
	s.fail(w, http.StatusInternalServerError, "index %q evicted immediately after load", req.Name)
}

func (s *Server) handleRemoveIndex(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Remove(name) {
		s.fail(w, http.StatusNotFound, "index %q not registered", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	arrive := time.Now()
	// Adopt the caller's request ID (a coordinator forwards its own) or
	// mint one; echo it as a header on every outcome, success or not.
	rid := r.Header.Get(HeaderRequestID)
	if rid == "" {
		rid = s.nextRequestID()
	}
	w.Header().Set(HeaderRequestID, rid)
	var req SearchRequest
	if err := decodeBody(r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.failr(w, rid, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	method, err := ParseMethod(req.Method)
	if err != nil {
		s.failr(w, rid, http.StatusBadRequest, "%v", err)
		return
	}
	reads := req.Reads
	if req.Seq != "" {
		if len(reads) > 0 {
			s.failr(w, rid, http.StatusBadRequest, "set either seq or reads, not both")
			return
		}
		reads = []Read{{Seq: req.Seq}}
	}
	if len(reads) == 0 {
		s.failr(w, rid, http.StatusBadRequest, "no reads in request")
		return
	}
	if len(reads) > s.cfg.MaxBatch {
		s.failr(w, rid, http.StatusRequestEntityTooLarge,
			"batch of %d exceeds limit %d", len(reads), s.cfg.MaxBatch)
		return
	}
	queries := make([]bwtmatch.Query, len(reads))
	for i, rd := range reads {
		k := req.K
		if rd.K != nil {
			k = *rd.K
		}
		if k < 0 || k > s.cfg.MaxK {
			s.failr(w, rid, http.StatusBadRequest,
				"read %d: k=%d outside [0,%d]", i, k, s.cfg.MaxK)
			return
		}
		clean, _ := bwtmatch.Sanitize([]byte(rd.Seq))
		queries[i] = bwtmatch.Query{ID: rd.ID, Pattern: clean, K: k}
	}
	idx, err := s.reg.Get(req.Index)
	if err != nil {
		s.failr(w, rid, http.StatusNotFound, "%v", err)
		return
	}
	var sharded *bwtmatch.ShardedIndex
	if len(req.Shards) > 0 {
		sx, ok := idx.(*bwtmatch.ShardedIndex)
		if !ok {
			s.failr(w, rid, http.StatusBadRequest,
				"index %q is monolithic; shards cannot be restricted", req.Index)
			return
		}
		prev := -1
		for _, sh := range req.Shards {
			if sh < 0 || sh >= sx.Shards() || sh <= prev {
				s.failr(w, rid, http.StatusBadRequest,
					"bad shard set %v for index %q (%d shards; ordinals must be strictly increasing)",
					req.Shards, req.Index, sx.Shards())
				return
			}
			prev = sh
		}
		sharded = sx
	}

	done, ok := s.beginSearch()
	if !ok {
		s.recordShed(rid, req.Index, len(reads), arrive)
		s.failr(w, rid, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer done()
	if s.testHookSearchStart != nil {
		s.testHookSearchStart()
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(obs.WithRequestID(r.Context(), rid), timeout)
	defer cancel()

	// A sampled request (X-Km-Trace, set by kmload -trace or a sampling
	// coordinator) gets a span fragment recorded alongside the normal
	// bookkeeping; untraced requests never touch a FragmentBuilder.
	var fb *obs.FragmentBuilder
	if TraceHeaderSet(r.Header.Get(HeaderTrace)) {
		fb = obs.NewFragmentBuilder("kmserved", rid)
		ctx = obs.WithTraceRequest(ctx)
	}

	// Queue for a concurrency slot; a timeout while queued is billed to
	// the request, not the server. A free slot is taken unconditionally so
	// an already-expired deadline still surfaces as per-read errors rather
	// than racing the two select branches.
	queueStart := time.Now()
	select {
	case s.sem <- struct{}{}:
	default:
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.recordShed(rid, req.Index, len(reads), arrive)
			s.failr(w, rid, http.StatusServiceUnavailable, "timed out waiting for a search slot")
			return
		}
	}
	defer func() { <-s.sem }()
	queueWait := time.Since(queueStart)
	if fb != nil {
		fb.Span(0, "queue", 0, fb.Now())
	}

	s.met.InFlight.Add(1)
	var searchMark time.Duration
	if fb != nil {
		searchMark = fb.Now()
	}
	start := time.Now()
	var results []bwtmatch.Result
	if sharded != nil {
		results = sharded.MapShardsContext(ctx, queries, method, s.cfg.Workers, req.Shards)
	} else {
		results = idx.MapAllContext(ctx, queries, method, s.cfg.Workers)
	}
	elapsed := time.Since(start)
	if fb != nil {
		fb.Span(0, "search", searchMark, fb.Now(),
			obs.Arg{Key: "reads", Val: int64(len(reads))},
			obs.Arg{Key: "shards", Val: int64(len(req.Shards))})
	}
	s.met.InFlight.Add(-1)

	resp := SearchResponse{
		Index:   req.Index,
		Method:  method.String(),
		Reads:   len(reads),
		Results: make([]ReadResult, len(results)),
	}
	var leaves, steps, memo int64
	for i, res := range results {
		rr := ReadResult{ID: queries[i].ID, Matches: []Match{}}
		if res.Err != nil {
			rr.Error = res.Err.Error()
			resp.Errors++
		} else {
			rr.Matches = make([]Match, len(res.Matches))
			for j, m := range res.Matches {
				rr.Matches[j] = Match{Pos: m.Pos, Mismatches: m.Mismatches}
			}
			resp.Matches += len(res.Matches)
		}
		leaves += int64(res.Stats.MTreeLeaves)
		steps += int64(res.Stats.StepCalls)
		memo += int64(res.Stats.MemoHits)
		resp.Results[i] = rr
	}
	resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	resp.RequestID = rid
	if fb != nil {
		fb.Mark(0, "stats",
			obs.Arg{Key: "mtree_leaves", Val: leaves},
			obs.Arg{Key: "step_calls", Val: steps},
			obs.Arg{Key: "memo_hits", Val: memo})
		resp.Trace = []obs.Fragment{fb.Fragment()}
	}
	s.met.ObserveBatch(int(method), elapsed, len(reads), resp.Matches, resp.Errors, leaves, steps, memo)
	s.slo.Observe(time.Since(arrive), true)
	frec := obs.QueryRecord{
		Start:     arrive,
		RID:       rid,
		Index:     req.Index,
		Method:    MethodName(method),
		ElapsedNS: int64(time.Since(arrive)),
		Reads:     int32(len(reads)),
		Matches:   int32(resp.Matches),
		Errors:    int32(resp.Errors),
		Leaves:    leaves,
		Steps:     steps,
		MemoHits:  memo,
	}
	frec.PhaseNS[0] = int64(queueWait)
	frec.PhaseNS[1] = int64(elapsed)
	s.flight.Record(&frec)
	s.log.Info("search",
		"rid", rid,
		"index", req.Index,
		"method", method.String(),
		"reads", len(reads),
		"matches", resp.Matches,
		"errors", resp.Errors,
		"mtree_leaves", leaves,
		"step_calls", steps,
		"memo_hits", memo,
		"elapsed_ms", resp.ElapsedMS)
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the Prometheus exposition: the server-wide
// counters, then one series pair per shard of every registered sharded
// index, labelled by index name and shard ordinal. The per-shard series
// are rendered at scrape time from ShardedIndex.ShardInfo, so they need
// no bookkeeping in the hot path beyond the index's own atomics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WritePrometheus(w)
	s.slo.WritePrometheus(w)
	relBases, relTenants := s.reg.relativeSnapshot()
	writeRelativeMetrics(w, relBases, relTenants)
	sharded := s.reg.shardSnapshot()
	if len(sharded) == 0 {
		return
	}
	// All samples of one metric stay contiguous, as the text format
	// requires: two passes, one per metric.
	fmt.Fprintf(w, "# HELP km_shard_searches_total searches fanned out to each shard\n# TYPE km_shard_searches_total counter\n")
	for _, e := range sharded {
		for i, si := range e.info {
			fmt.Fprintf(w, "km_shard_searches_total{index=%q,shard=\"%d\"} %d\n", e.name, i, si.Searches)
		}
	}
	fmt.Fprintf(w, "# HELP km_shard_search_ns_total cumulative nanoseconds searching each shard\n# TYPE km_shard_search_ns_total counter\n")
	for _, e := range sharded {
		for i, si := range e.info {
			fmt.Fprintf(w, "km_shard_search_ns_total{index=%q,shard=\"%d\"} %d\n", e.name, i, si.SearchNS)
		}
	}
}

// writeRelativeMetrics renders the multi-tenant series: per shared base
// the tenant count and resident bytes, per relative tenant its delta
// bytes and the base-hit vs delta-correction BWT-read split. Rendered
// at scrape time from the registry snapshot; the hot path pays only the
// delta's own atomics.
func writeRelativeMetrics(w io.Writer, bases []relBaseSeries, tenants []relTenantSeries) {
	if len(bases) == 0 && len(tenants) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP km_relative_tenants live relative tenants sharing each base\n# TYPE km_relative_tenants gauge\n")
	for _, b := range bases {
		fmt.Fprintf(w, "km_relative_tenants{base=%q} %d\n", b.base, b.tenants)
	}
	fmt.Fprintf(w, "# HELP km_relative_base_bytes resident bytes of each shared base\n# TYPE km_relative_base_bytes gauge\n")
	for _, b := range bases {
		fmt.Fprintf(w, "km_relative_base_bytes{base=%q} %d\n", b.base, b.bytes)
	}
	fmt.Fprintf(w, "# HELP km_relative_delta_bytes resident bytes of each tenant's delta\n# TYPE km_relative_delta_bytes gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "km_relative_delta_bytes{index=%q,base=%q} %d\n", t.name, t.base, t.deltaBytes)
	}
	fmt.Fprintf(w, "# HELP km_relative_base_hits_total BWT reads answered from the shared base\n# TYPE km_relative_base_hits_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "km_relative_base_hits_total{index=%q} %d\n", t.name, t.baseHits)
	}
	fmt.Fprintf(w, "# HELP km_relative_delta_corrections_total BWT reads answered from the delta exception set\n# TYPE km_relative_delta_corrections_total counter\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "km_relative_delta_corrections_total{index=%q} %d\n", t.name, t.corrections)
	}
}

// decodeBody parses a size-capped JSON body, rejecting trailing garbage.
func decodeBody(r *http.Request, maxBytes int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second decode must hit EOF; anything else is trailing data.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}
