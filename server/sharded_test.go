package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"bwtmatch"
	"bwtmatch/internal/obs"
)

func buildSharded(t *testing.T, seed int64, bases, shards, maxPat int) *bwtmatch.ShardedIndex {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sx, err := bwtmatch.NewSharded(randomDNA(rng, bases),
		bwtmatch.WithShards(shards), bwtmatch.WithMaxPatternLen(maxPat))
	if err != nil {
		t.Fatal(err)
	}
	return sx
}

// TestRegistryShardedCost pins the double-count hazard: a sharded
// index's SizeBytes already includes its packed text, so the registry
// must not add Len again the way it does for monolithic indexes.
func TestRegistryShardedCost(t *testing.T) {
	sx := buildSharded(t, 11, 3000, 3, 32)
	if got := indexBytes(sx); got != int64(sx.SizeBytes()) {
		t.Errorf("sharded cost %d, want SizeBytes alone (%d)", got, sx.SizeBytes())
	}
	mono := buildIndex(t, 11, 3000)
	if got := indexBytes(mono); got != int64(mono.SizeBytes())+int64(mono.Len()) {
		t.Errorf("monolithic cost %d, want SizeBytes+Len", got)
	}
}

// TestRegistryEvictsShardedAsOneUnit registers a multi-shard index and
// forces it out via the LRU budget: the whole index leaves the registry
// in a single eviction (one onEvict call, full cost released), and the
// evicted value keeps answering searches for holders that grabbed it
// before eviction — including shards that had not materialized yet.
func TestRegistryEvictsShardedAsOneUnit(t *testing.T) {
	dir := t.TempDir()
	src := buildSharded(t, 12, 4000, 4, 48)
	path := filepath.Join(dir, "g.bwt")
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	mono := buildIndex(t, 13, 4000)
	// A lazily loaded sharded index reports serialized shard sizes until
	// shards materialize, so measure the registration-time cost on a
	// throwaway load rather than on the in-memory builder's copy.
	probe, err := bwtmatch.LoadShardedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lazyCost := indexBytes(probe)
	probe.Close()
	r := NewRegistry(lazyCost + indexBytes(mono) - 1) // room for one, not both
	var evicted []string
	r.onEvict = func(name string) { evicted = append(evicted, name) }

	sx, err := r.LoadFile("g", path)
	if err != nil {
		t.Fatal(err)
	}
	held := sx.(*bwtmatch.ShardedIndex)
	// Only the first shard materializes before eviction; the rest must
	// still be loadable from the backing file afterwards.
	if _, err := held.Search([]byte("acgtacgt"), 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("mono", mono); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "g" {
		t.Fatalf("evicted %v, want exactly [g]", evicted)
	}
	if _, err := r.Get("g"); !errors.Is(err, ErrNotFound) {
		t.Errorf("sharded index still resident after eviction: %v", err)
	}
	// The whole multi-shard entry left in one step: only mono remains.
	if got := r.Resident(); got != indexBytes(mono) {
		t.Errorf("resident %d after eviction, want %d — full sharded cost not released",
			got, indexBytes(mono))
	}
	// The held reference must stay usable: eviction does not Close the
	// backing file, so unmaterialized shards still load.
	if err := held.LoadAll(); err != nil {
		t.Fatalf("evicted sharded index lost its backing file: %v", err)
	}
	if _, err := held.Search([]byte("acgtacgt"), 1); err != nil {
		t.Fatalf("evicted sharded index stopped searching: %v", err)
	}
}

// TestRegistryLoadFileDispatch loads both container layouts through the
// same LoadFile path and checks the magic-based dispatch.
func TestRegistryLoadFileDispatch(t *testing.T) {
	dir := t.TempDir()
	monoPath := filepath.Join(dir, "mono.bwt")
	if err := buildIndex(t, 14, 1500).SaveFile(monoPath); err != nil {
		t.Fatal(err)
	}
	shardPath := filepath.Join(dir, "sharded.bwt")
	if err := buildSharded(t, 14, 1500, 3, 24).SaveFile(shardPath); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(0)
	m, err := r.LoadFile("mono", monoPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*bwtmatch.Index); !ok {
		t.Errorf("monolithic file loaded as %T", m)
	}
	sx, err := r.LoadFile("sharded", shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sx.(*bwtmatch.ShardedIndex); !ok {
		t.Errorf("sharded file loaded as %T", sx)
	}
	if _, err := r.LoadFile("bad", filepath.Join(dir, "missing.bwt")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestIndexesEndpointReportsShards checks GET /v1/indexes carries the
// shard count and per-shard byte sizes for sharded entries, and omits
// them for monolithic ones.
func TestIndexesEndpointReportsShards(t *testing.T) {
	s := New(Config{})
	sx := buildSharded(t, 15, 3000, 3, 32)
	if err := s.RegisterIndex("sharded", sx); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterIndex("mono", buildIndex(t, 15, 1000)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list IndexListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Indexes) != 2 {
		t.Fatalf("listed %d indexes, want 2", len(list.Indexes))
	}
	byName := map[string]IndexInfo{}
	for _, info := range list.Indexes {
		byName[info.Name] = info
	}
	m := byName["mono"]
	if m.Shards != 0 || m.ShardBytes != nil {
		t.Errorf("monolithic entry reports shard fields: %+v", m)
	}
	sh := byName["sharded"]
	if sh.Shards != sx.Shards() {
		t.Errorf("shards = %d, want %d", sh.Shards, sx.Shards())
	}
	if len(sh.ShardBytes) != sx.Shards() {
		t.Fatalf("shard_bytes has %d entries, want %d", len(sh.ShardBytes), sx.Shards())
	}
	for i, b := range sh.ShardBytes {
		if b <= 0 {
			t.Errorf("shard %d reports %d bytes", i, b)
		}
	}
	if list.ResidentBytes != indexBytes(sx)+indexBytes(byNameMatcher(t, s, "mono")) {
		t.Errorf("resident_bytes %d inconsistent with entry costs", list.ResidentBytes)
	}
}

func byNameMatcher(t *testing.T, s *Server, name string) bwtmatch.Matcher {
	t.Helper()
	m, err := s.Registry().Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMetricsPerShardSeries scrapes /metrics after fanned-out searches
// and checks the per-shard counters appear, labelled by index and shard
// ordinal, in valid exposition format.
func TestMetricsPerShardSeries(t *testing.T) {
	s := New(Config{})
	sx := buildSharded(t, 16, 3000, 3, 32)
	if err := s.RegisterIndex("g", sx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const rounds = 4
	for i := 0; i < rounds; i++ {
		resp, body := postJSON(t, ts, "/v1/search", `{"index":"g","seq":"acgtacgtac","k":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search: %d %s", resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("/metrics not valid exposition with shard series: %v\n%s", err, text)
	}
	for i := 0; i < sx.Shards(); i++ {
		want := fmt.Sprintf(`km_shard_searches_total{index="g",shard="%d"} %d`, i, rounds)
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, text)
		}
		// Nanosecond totals are timing-dependent; presence is enough.
		if !strings.Contains(text, fmt.Sprintf(`km_shard_search_ns_total{index="g",shard="%d"} `, i)) {
			t.Errorf("missing ns series for shard %d", i)
		}
	}
}

// TestSearchShardedMatchesMonolithic drives the full HTTP path against
// a sharded registration and checks the results agree with a monolithic
// index over the same target.
func TestSearchShardedMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	target := randomDNA(rng, 6000)
	mono, err := bwtmatch.New(append([]byte(nil), target...))
	if err != nil {
		t.Fatal(err)
	}
	sx, err := bwtmatch.NewSharded(target,
		bwtmatch.WithShards(4), bwtmatch.WithMaxPatternLen(64))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.RegisterIndex("g", sx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var reads []string
	for i := 0; i < 16; i++ {
		start := rng.Intn(len(target) - 40)
		p := append([]byte(nil), target[start:start+40]...)
		p[rng.Intn(len(p))] = "acgt"[rng.Intn(4)]
		reads = append(reads, fmt.Sprintf(`{"id":"r%d","seq":"%s"}`, i, p))
	}
	body := fmt.Sprintf(`{"index":"g","k":2,"reads":[%s]}`, strings.Join(reads, ","))
	resp, raw := postJSON(t, ts, "/v1/search", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, raw)
	}
	var sr SearchResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Errors != 0 || len(sr.Results) != 16 {
		t.Fatalf("response: %d errors, %d results", sr.Errors, len(sr.Results))
	}
	for i, rr := range sr.Results {
		pattern := []byte(strings.Split(strings.Split(reads[i], `"seq":"`)[1], `"`)[0])
		want, err := mono.Search(pattern, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(rr.Matches) != len(want) {
			t.Fatalf("read %d: %d matches via server, %d monolithic", i, len(rr.Matches), len(want))
		}
		for j := range want {
			if rr.Matches[j].Pos != want[j].Pos || rr.Matches[j].Mismatches != want[j].Mismatches {
				t.Errorf("read %d match %d: got %+v, want %+v", i, j, rr.Matches[j], want[j])
			}
		}
	}
}
