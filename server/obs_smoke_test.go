package server_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bwtmatch"
	"bwtmatch/internal/obs"
	"bwtmatch/server"
	"bwtmatch/server/client"
)

// TestObsSmoke is the `make obs-smoke` gate: boot a real kmserved, serve
// one search, then scrape GET /metrics and require a valid Prometheus
// text exposition carrying the documented kmserved_* series. It needs no
// external scraper — obs.ValidateExposition is the in-repo validator.
func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	work := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	target := make([]byte, 8192)
	for i := range target {
		target[i] = "acgt"[rng.Intn(4)]
	}
	idx, err := bwtmatch.New(target)
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(work, "g.bwt")
	if err := idx.SaveFile(indexPath); err != nil {
		t.Fatal(err)
	}

	base, _ := startDaemon(t, work, "-load", "g="+indexPath, "-log-level", "warn")
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.Search(ctx, server.SearchRequest{
		Index: "g", K: 2, Seq: string(target[100:160]),
	}); err != nil {
		t.Fatalf("search: %v", err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content-type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	out := string(body)
	for _, want := range []string{
		"kmserved_queries_total 1",
		"kmserved_batches_total 1",
		"kmserved_mtree_leaves_total",
		"kmserved_step_calls_total",
		"kmserved_indexes_loaded_total 1",
		"# TYPE kmserved_search_latency_ms histogram",
		`kmserved_search_latency_ms_bucket{method="a",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The SLO layer rides the same exposition.
	for _, want := range []string{
		"km_slo_latency_objective_ms",
		"km_slo_availability_total 1",
		`km_slo_burn_rate{slo="latency",window="5m"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing SLO series %q", want)
		}
	}
	// The M-tree must have done real work for the served search.
	if strings.Contains(out, "kmserved_mtree_leaves_total 0\n") {
		t.Error("mtree_leaves_total stayed 0 after a search")
	}

	// The always-on flight recorder is live without any -debug flag and
	// already holds the served batch.
	fr, err := http.Get(base + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Body.Close()
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flightrecorder: %s", fr.Status)
	}
	frBody, err := io.ReadAll(fr.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total": 1`, `"queue"`, `"search"`, `"rid"`} {
		if !strings.Contains(string(frBody), want) {
			t.Errorf("flight recorder snapshot missing %s:\n%s", want, frBody)
		}
	}
}
