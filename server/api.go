// Package server implements kmserved, a long-running HTTP daemon that
// serves k-mismatch searches over a registry of saved bwtmatch indexes.
//
// The daemon amortizes index construction exactly as the paper's design
// intends: a genome is indexed once (bwtmatch.Save), registered under a
// name, and then queried concurrently by many clients. Endpoints:
//
//	POST /v1/search    single read or batch, JSON in/out
//	GET  /v1/indexes   list registered indexes
//	POST /v1/indexes   load a saved .bwt file under a name
//	DELETE /v1/indexes/{name}  evict an index
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      expvar-style JSON counters
package server

import (
	"fmt"

	"bwtmatch"
)

// SearchRequest is the body of POST /v1/search. Exactly one of Seq
// (single-read shorthand) or Reads must be set.
type SearchRequest struct {
	// Index names the registered index to search.
	Index string `json:"index"`
	// K is the default mismatch budget for reads that do not set one.
	K int `json:"k"`
	// Method selects the matcher: a|bwt|stree|amir|cole|online|seed
	// (default "a", the paper's Algorithm A).
	Method string `json:"method,omitempty"`
	// Seq is the single-read shorthand: search one pattern.
	Seq string `json:"seq,omitempty"`
	// Reads is the batched form.
	Reads []Read `json:"reads,omitempty"`
	// TimeoutMS bounds the whole request; 0 means the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Read is one pattern inside a batched SearchRequest.
type Read struct {
	// ID is echoed back in the corresponding ReadResult (optional).
	ID string `json:"id,omitempty"`
	// Seq is the DNA pattern (acgtACGT; 'n'/'N' are sanitized to 'a').
	Seq string `json:"seq"`
	// K overrides the request-level mismatch budget when non-nil.
	K *int `json:"k,omitempty"`
}

// Match mirrors bwtmatch.Match on the wire.
type Match struct {
	Pos        int `json:"pos"`
	Mismatches int `json:"mismatches"`
}

// ReadResult is the outcome for one read of a batch.
type ReadResult struct {
	ID      string  `json:"id,omitempty"`
	Matches []Match `json:"matches"`
	// Error is the per-read failure (bad characters, cancelled); the rest
	// of the batch still completes.
	Error string `json:"error,omitempty"`
}

// SearchResponse is the body returned by POST /v1/search.
type SearchResponse struct {
	Index   string       `json:"index"`
	Method  string       `json:"method"`
	Results []ReadResult `json:"results"`
	// Reads, Matches and Errors summarize the batch.
	Reads     int     `json:"reads"`
	Matches   int     `json:"matches"`
	Errors    int     `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// RegisterRequest is the body of POST /v1/indexes.
type RegisterRequest struct {
	// Name registers the index under this key.
	Name string `json:"name"`
	// Path is a server-side file written by bwtmatch.Save / kmsearch -save.
	Path string `json:"path"`
}

// IndexInfo describes one registered index.
type IndexInfo struct {
	Name      string `json:"name"`
	Bases     int    `json:"bases"`
	SizeBytes int    `json:"size_bytes"`
	Refs      int    `json:"refs"`
	// Shards is the shard count for a sharded index, 0 for monolithic.
	Shards int `json:"shards,omitempty"`
	// ShardBytes lists each shard's serialized (or resident) byte size,
	// in shard order; nil for monolithic indexes.
	ShardBytes []int64 `json:"shard_bytes,omitempty"`
	// Queries counts searches served from this index since registration.
	Queries int64 `json:"queries"`
}

// IndexListResponse is the body of GET /v1/indexes.
type IndexListResponse struct {
	Indexes []IndexInfo `json:"indexes"`
	// BudgetBytes and ResidentBytes describe the registry's LRU byte
	// budget (0 budget means unlimited).
	BudgetBytes   int64 `json:"budget_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// methodNames maps wire names to matchers, mirroring cmd/kmsearch.
var methodNames = map[string]bwtmatch.Method{
	"":       bwtmatch.AlgorithmA,
	"a":      bwtmatch.AlgorithmA,
	"bwt":    bwtmatch.BWTBaseline,
	"stree":  bwtmatch.STree,
	"amir":   bwtmatch.Amir,
	"cole":   bwtmatch.Cole,
	"online": bwtmatch.Online,
	"seed":   bwtmatch.Seed,
}

// ParseMethod resolves a wire method name ("" means Algorithm A).
func ParseMethod(name string) (bwtmatch.Method, error) {
	m, ok := methodNames[name]
	if !ok {
		return 0, fmt.Errorf("unknown method %q", name)
	}
	return m, nil
}
