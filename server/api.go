// Package server implements kmserved, a long-running HTTP daemon that
// serves k-mismatch searches over a registry of saved bwtmatch indexes.
//
// The daemon amortizes index construction exactly as the paper's design
// intends: a genome is indexed once (bwtmatch.Save), registered under a
// name, and then queried concurrently by many clients. Endpoints:
//
//	POST /v1/search    single read or batch, JSON in/out
//	GET  /v1/indexes   list registered indexes
//	POST /v1/indexes   load a saved .bwt file under a name
//	DELETE /v1/indexes/{name}  evict an index
//	GET  /healthz      liveness (503 while draining)
//	GET  /readyz       readiness (503 while draining or warming shards)
//	GET  /metrics      Prometheus text exposition (/metrics.json for JSON)
package server

import (
	"fmt"

	"bwtmatch"
)

// SearchRequest is the body of POST /v1/search. Exactly one of Seq
// (single-read shorthand) or Reads must be set.
type SearchRequest struct {
	// Index names the registered index to search.
	Index string `json:"index"`
	// K is the default mismatch budget for reads that do not set one.
	K int `json:"k"`
	// Method selects the matcher: a|bwt|stree|amir|cole|online|seed
	// (default "a", the paper's Algorithm A).
	Method string `json:"method,omitempty"`
	// Seq is the single-read shorthand: search one pattern.
	Seq string `json:"seq,omitempty"`
	// Reads is the batched form.
	Reads []Read `json:"reads,omitempty"`
	// TimeoutMS bounds the whole request; 0 means the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Shards restricts a sharded index search to the given shard
	// ordinals (strictly increasing): results carry only the matches
	// those shards own, in global position order. Empty means all
	// shards. This is the worker half of the cluster tier's routing
	// contract — a coordinator spreads disjoint shard subsets over
	// workers and concatenates the owned results. Rejected with 400 for
	// monolithic indexes.
	Shards []int `json:"shards,omitempty"`
}

// Read is one pattern inside a batched SearchRequest.
type Read struct {
	// ID is echoed back in the corresponding ReadResult (optional).
	ID string `json:"id,omitempty"`
	// Seq is the DNA pattern (acgtACGT; 'n'/'N' are sanitized to 'a').
	Seq string `json:"seq"`
	// K overrides the request-level mismatch budget when non-nil.
	K *int `json:"k,omitempty"`
}

// Match mirrors bwtmatch.Match on the wire.
type Match struct {
	Pos        int `json:"pos"`
	Mismatches int `json:"mismatches"`
}

// ReadResult is the outcome for one read of a batch.
type ReadResult struct {
	ID      string  `json:"id,omitempty"`
	Matches []Match `json:"matches"`
	// Error is the per-read failure (bad characters, cancelled); the rest
	// of the batch still completes.
	Error string `json:"error,omitempty"`
}

// SearchResponse is the body returned by POST /v1/search.
type SearchResponse struct {
	Index   string       `json:"index"`
	Method  string       `json:"method"`
	Results []ReadResult `json:"results"`
	// Reads, Matches and Errors summarize the batch.
	Reads     int     `json:"reads"`
	Matches   int     `json:"matches"`
	Errors    int     `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Partial reports that a cluster coordinator could not reach any
	// replica for some shard subset: per-read results are missing the
	// matches owned by FailedShards. Single-process kmserved never sets
	// it — a worker either answers its whole assigned subset or fails.
	Partial bool `json:"partial,omitempty"`
	// FailedShards lists the shard ordinals whose matches are missing
	// when Partial is set, sorted ascending.
	FailedShards []int `json:"failed_shards,omitempty"`
}

// RegisterRequest is the body of POST /v1/indexes.
type RegisterRequest struct {
	// Name registers the index under this key.
	Name string `json:"name"`
	// Path is a server-side file written by bwtmatch.Save / kmsearch -save.
	Path string `json:"path"`
}

// IndexInfo describes one registered index.
type IndexInfo struct {
	Name      string `json:"name"`
	Bases     int    `json:"bases"`
	SizeBytes int    `json:"size_bytes"`
	Refs      int    `json:"refs"`
	// Shards is the shard count for a sharded index, 0 for monolithic.
	Shards int `json:"shards,omitempty"`
	// ShardBytes lists each shard's serialized (or resident) byte size,
	// in shard order; nil for monolithic indexes.
	ShardBytes []int64 `json:"shard_bytes,omitempty"`
	// Queries counts searches served from this index since registration.
	Queries int64 `json:"queries"`
}

// IndexListResponse is the body of GET /v1/indexes.
type IndexListResponse struct {
	Indexes []IndexInfo `json:"indexes"`
	// BudgetBytes and ResidentBytes describe the registry's LRU byte
	// budget (0 budget means unlimited).
	BudgetBytes   int64 `json:"budget_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// methodNames maps wire names to matchers, mirroring cmd/kmsearch.
var methodNames = map[string]bwtmatch.Method{
	"":       bwtmatch.AlgorithmA,
	"a":      bwtmatch.AlgorithmA,
	"bwt":    bwtmatch.BWTBaseline,
	"stree":  bwtmatch.STree,
	"amir":   bwtmatch.Amir,
	"cole":   bwtmatch.Cole,
	"online": bwtmatch.Online,
	"seed":   bwtmatch.Seed,
}

// ParseMethod resolves a wire method name ("" means Algorithm A).
func ParseMethod(name string) (bwtmatch.Method, error) {
	m, ok := methodNames[name]
	if !ok {
		return 0, fmt.Errorf("unknown method %q", name)
	}
	return m, nil
}

// MethodName is ParseMethod's inverse: the canonical wire token for a
// matcher ("a" for Algorithm A). The cluster coordinator uses it to
// forward and cache-key a canonical method name, so "a", "" and any
// future aliases coalesce. Method.String() is the human display name
// ("A()"), which is not valid on the wire.
func MethodName(m bwtmatch.Method) string {
	for name, mm := range methodNames {
		if mm == m && name != "" {
			return name
		}
	}
	return ""
}
