package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bwtmatch/internal/obs"
)

// postRaw posts body with optional headers and returns the response.
func postRaw(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	s, _ := newTestServer(t, Config{}, 2000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// No header: the server mints an ID and echoes it in header + body.
	resp, body := postRaw(t, ts.URL+"/v1/search", `{"index":"g","seq":"acgt","k":1}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	hdr := resp.Header.Get(HeaderRequestID)
	if hdr == "" {
		t.Fatalf("no %s header on success", HeaderRequestID)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.RequestID != hdr {
		t.Errorf("body request_id %q != header %q", sr.RequestID, hdr)
	}
	if len(sr.Trace) != 0 {
		t.Errorf("untraced request returned %d fragments", len(sr.Trace))
	}

	// Caller-supplied header: adopted verbatim.
	resp, body = postRaw(t, ts.URL+"/v1/search", `{"index":"g","seq":"acgt","k":1}`,
		map[string]string{HeaderRequestID: "creq-42-7"})
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get(HeaderRequestID) != "creq-42-7" || sr.RequestID != "creq-42-7" {
		t.Errorf("caller rid not adopted: header %q body %q",
			resp.Header.Get(HeaderRequestID), sr.RequestID)
	}
}

func TestRequestIDEchoedOnError(t *testing.T) {
	s, _ := newTestServer(t, Config{}, 2000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postRaw(t, ts.URL+"/v1/search", `{"index":"missing","seq":"acgt"}`,
		map[string]string{HeaderRequestID: "creq-err-1"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(HeaderRequestID) != "creq-err-1" {
		t.Errorf("error response header rid = %q", resp.Header.Get(HeaderRequestID))
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "creq-err-1" || e.Error == "" {
		t.Errorf("error body = %+v, want request_id creq-err-1", e)
	}
}

func TestRequestIDEchoedOnShed(t *testing.T) {
	s, _ := newTestServer(t, Config{}, 2000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Draining: every new search is shed with a 503 that still echoes
	// the rid and is visible in the flight recorder as a shed record.
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	resp, body := postRaw(t, ts.URL+"/v1/search", `{"index":"g","seq":"acgt"}`,
		map[string]string{HeaderRequestID: "creq-shed-9"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "creq-shed-9" {
		t.Errorf("shed error body = %+v", e)
	}

	// The refusal itself is a flight-recorder record flagged shed.
	if s.flight.Total() != 1 {
		t.Fatalf("flight total = %d, want the shed record", s.flight.Total())
	}
	blob, err := json.Marshal(s.flight.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"shed":true`) ||
		!strings.Contains(string(blob), `"rid":"creq-shed-9"`) {
		t.Errorf("shed record missing from snapshot: %s", blob)
	}
}

func TestTraceHeaderReturnsFragment(t *testing.T) {
	s, _ := newTestServer(t, Config{}, 2000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postRaw(t, ts.URL+"/v1/search", `{"index":"g","seq":"acgt","k":1}`,
		map[string]string{HeaderTrace: "1", HeaderRequestID: "creq-tr-1"})
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Trace) != 1 {
		t.Fatalf("traced request returned %d fragments, want 1", len(sr.Trace))
	}
	f := sr.Trace[0]
	if f.Process != "kmserved" || f.RequestID != "creq-tr-1" {
		t.Errorf("fragment identity = %q/%q", f.Process, f.RequestID)
	}
	names := map[string]bool{}
	for _, sp := range f.Spans {
		names[sp.Name] = true
	}
	if !names["queue"] || !names["search"] {
		t.Errorf("fragment spans = %+v, want queue and search", f.Spans)
	}
	// The fragment renders into a valid single-process Chrome trace.
	var sb strings.Builder
	if err := obs.WriteChromeTraceMulti(&sb, sr.Trace); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(strings.NewReader(sb.String())); err != nil {
		t.Errorf("fragment does not render to a valid trace: %v", err)
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{}, 2000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRaw(t, ts.URL+"/v1/search", `{"index":"g","seq":"acgt","k":1}`,
		map[string]string{HeaderRequestID: "creq-fr-1"})
	resp, err := http.Get(ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight recorder status %d", resp.StatusCode)
	}
	var doc struct {
		Total  uint64   `json:"total"`
		Phases []string `json:"phases"`
		Recent []struct {
			RID      string             `json:"rid"`
			Reads    int                `json:"reads"`
			PhasesMS map[string]float64 `json:"phases_ms"`
		} `json:"recent"`
		Slowest []json.RawMessage `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 1 || len(doc.Recent) != 1 || len(doc.Slowest) != 1 {
		t.Fatalf("snapshot shape = %+v", doc)
	}
	if doc.Recent[0].RID != "creq-fr-1" || doc.Recent[0].Reads != 1 {
		t.Errorf("recent[0] = %+v", doc.Recent[0])
	}
	if _, ok := doc.Recent[0].PhasesMS["search"]; !ok {
		t.Errorf("no search phase in %v", doc.Recent[0].PhasesMS)
	}
}

func TestMetricsIncludeSLO(t *testing.T) {
	s, _ := newTestServer(t, Config{}, 2000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postRaw(t, ts.URL+"/v1/search", `{"index":"g","seq":"acgt","k":1}`, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(blob)
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition with SLO series invalid: %v", err)
	}
	for _, want := range []string{
		"km_slo_latency_objective_ms",
		"km_slo_latency_good_total{objective_ms=",
		"km_slo_availability_total 1",
		`km_slo_burn_rate{slo="latency",window="5m"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}
}
