package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"bwtmatch/internal/obs"
)

// Metrics aggregates server-wide counters. The request-path counters
// and latency histograms are striped across cache-line-padded cells
// (obs.ShardedCounter / obs.ShardedHistogram): concurrent batches on
// different CPUs update disjoint cache lines instead of bouncing one
// atomic word between cores, and the stripes are summed only at scrape
// time. /metrics renders a point-in-time Prometheus exposition and
// /metrics.json the same data as JSON. Unlike the stdlib expvar package
// the counters are per-Server, so tests can run many servers in one
// process without global registration collisions. Construct with
// NewMetrics: the per-method histograms need allocation.
type Metrics struct {
	QueriesTotal  obs.ShardedCounter // individual reads searched
	MatchesTotal  obs.ShardedCounter // matches emitted across all reads
	ErrorsTotal   obs.ShardedCounter // per-read errors (bad input, cancelled)
	BatchesTotal  obs.ShardedCounter // POST /v1/search requests served
	RejectedTotal obs.ShardedCounter // requests refused with 4xx/503
	InFlight      obs.ShardedCounter // searches currently executing

	// The paper's work counters, aggregated from bwtmatch.Stats.
	MTreeLeavesTotal obs.ShardedCounter // Σ n' (Table 2)
	StepCallsTotal   obs.ShardedCounter // Σ BWT rank operations
	MemoHitsTotal    obs.ShardedCounter // Σ M-tree derivations

	// Registry mutations are rare and lock-protected already; plain
	// atomics keep them word-sized.
	IndexesLoaded  atomic.Int64
	IndexesEvicted atomic.Int64

	perMethod [8]*obs.ShardedHistogram // indexed by bwtmatch.Method
}

// NewMetrics builds Metrics with one latency histogram per method, each
// with the obs default bucket set (obs.DefaultBucketCount buckets).
func NewMetrics() *Metrics {
	m := &Metrics{}
	for i := range m.perMethod {
		m.perMethod[i] = obs.NewShardedLatencyHistogram()
	}
	return m
}

// ObserveBatch records one completed search batch.
func (m *Metrics) ObserveBatch(method int, d time.Duration, reads, matches, errs int, leaves, steps, memo int64) {
	m.BatchesTotal.Add(1)
	m.QueriesTotal.Add(int64(reads))
	m.MatchesTotal.Add(int64(matches))
	m.ErrorsTotal.Add(int64(errs))
	m.MTreeLeavesTotal.Add(leaves)
	m.StepCallsTotal.Add(steps)
	m.MemoHitsTotal.Add(memo)
	if method >= 0 && method < len(m.perMethod) {
		m.perMethod[method].Observe(d)
	}
}

// Snapshot renders all counters as a JSON-ready map (the /metrics.json
// document).
func (m *Metrics) Snapshot() map[string]any {
	methods := make(map[string]any)
	for i := range m.perMethod {
		if m.perMethod[i].Count() == 0 {
			continue
		}
		methods[methodNameFor(i)] = m.perMethod[i].Snapshot()
	}
	return map[string]any{
		"queries_total":       m.QueriesTotal.Load(),
		"matches_total":       m.MatchesTotal.Load(),
		"errors_total":        m.ErrorsTotal.Load(),
		"batches_total":       m.BatchesTotal.Load(),
		"rejected_total":      m.RejectedTotal.Load(),
		"in_flight":           m.InFlight.Load(),
		"mtree_leaves_total":  m.MTreeLeavesTotal.Load(),
		"step_calls_total":    m.StepCallsTotal.Load(),
		"memo_hits_total":     m.MemoHitsTotal.Load(),
		"indexes_loaded":      m.IndexesLoaded.Load(),
		"indexes_evicted":     m.IndexesEvicted.Load(),
		"method_latencies_ms": methods,
	}
}

// WritePrometheus emits every counter in Prometheus text exposition
// format 0.0.4. Metric names are documented in README.md ("Observing").
func (m *Metrics) WritePrometheus(w io.Writer) {
	obs.WriteCounter(w, "kmserved_queries_total", "individual reads searched", m.QueriesTotal.Load())
	obs.WriteCounter(w, "kmserved_matches_total", "matches emitted across all reads", m.MatchesTotal.Load())
	obs.WriteCounter(w, "kmserved_errors_total", "per-read errors (bad input, cancelled)", m.ErrorsTotal.Load())
	obs.WriteCounter(w, "kmserved_batches_total", "search batches served", m.BatchesTotal.Load())
	obs.WriteCounter(w, "kmserved_rejected_total", "requests refused with 4xx/503", m.RejectedTotal.Load())
	obs.WriteGauge(w, "kmserved_in_flight", "search batches currently executing", m.InFlight.Load())
	obs.WriteCounter(w, "kmserved_mtree_leaves_total", "total M-tree leaves (the paper's n')", m.MTreeLeavesTotal.Load())
	obs.WriteCounter(w, "kmserved_step_calls_total", "total BWT rank operations", m.StepCallsTotal.Load())
	obs.WriteCounter(w, "kmserved_memo_hits_total", "total M-tree derivations", m.MemoHitsTotal.Load())
	obs.WriteCounter(w, "kmserved_indexes_loaded_total", "indexes registered since start", m.IndexesLoaded.Load())
	obs.WriteCounter(w, "kmserved_indexes_evicted_total", "indexes evicted by the LRU budget", m.IndexesEvicted.Load())
	obs.WriteHistogramMeta(w, "kmserved_search_latency_ms", "per-batch search wall time by method")
	for i := range m.perMethod {
		if m.perMethod[i].Count() == 0 {
			continue
		}
		m.perMethod[i].WritePrometheus(w, "kmserved_search_latency_ms",
			fmt.Sprintf("method=%q", methodNameFor(i)))
	}
}

// LatencySource returns a merged obs.HistogramSource view over the
// per-method latency histograms, so the SLO layer computes attainment
// from the same striped data the kmserved_search_latency_ms series
// carry instead of double-counting observations elsewhere.
func (m *Metrics) LatencySource() obs.HistogramSource { return allMethodsSource{m} }

type allMethodsSource struct{ m *Metrics }

func (a allMethodsSource) Count() int64 {
	var n int64
	for i := range a.m.perMethod {
		n += a.m.perMethod[i].Count()
	}
	return n
}

func (a allMethodsSource) CountUnder(boundMS float64) int64 {
	var n int64
	for i := range a.m.perMethod {
		n += a.m.perMethod[i].CountUnder(boundMS)
	}
	return n
}

// methodNameFor inverts methodNames for display.
func methodNameFor(m int) string {
	for name, method := range methodNames {
		if int(method) == m && name != "" {
			return name
		}
	}
	return "unknown"
}

// ServeHTTP renders the Prometheus exposition, making Metrics mountable
// directly as the /metrics endpoint.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WritePrometheus(w)
}

// ServeJSON renders the JSON snapshot (the /metrics.json endpoint, and
// what /metrics served before the Prometheus migration).
func (m *Metrics) ServeJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.Snapshot())
}
