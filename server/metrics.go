package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// histBounds are the upper bounds (milliseconds) of the latency
// histogram buckets; the final bucket is unbounded. Log-spaced so both a
// 50µs cached lookup and a multi-second batch land in a useful bucket.
var histBounds = []float64{0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000}

// histogram is a fixed-bucket latency histogram safe for concurrent use.
type histogram struct {
	buckets [len11]atomic.Int64 // one per bound plus overflow
	count   atomic.Int64
	sumUS   atomic.Int64 // sum in microseconds (integers keep it atomic)
}

const len11 = 11 // len(histBounds) + 1, spelled out for the array type

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(histBounds) && ms > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(int64(d / time.Microsecond))
}

// snapshot renders the histogram for /metrics.
func (h *histogram) snapshot() map[string]any {
	counts := make(map[string]int64, len11)
	for i, b := range histBounds {
		counts[formatBound(b)] = h.buckets[i].Load()
	}
	counts["+inf"] = h.buckets[len(histBounds)].Load()
	n := h.count.Load()
	out := map[string]any{
		"count":      n,
		"sum_ms":     float64(h.sumUS.Load()) / 1000,
		"buckets_ms": counts,
	}
	if n > 0 {
		out["mean_ms"] = float64(h.sumUS.Load()) / 1000 / float64(n)
	}
	return out
}

func formatBound(b float64) string {
	v, _ := json.Marshal(b)
	return "le" + string(v)
}

// Metrics aggregates server-wide counters. All fields are atomics so the
// hot path never takes a lock; /metrics renders a point-in-time snapshot.
// Unlike the stdlib expvar package the counters are per-Server, so tests
// can run many servers in one process without global registration
// collisions.
type Metrics struct {
	QueriesTotal  atomic.Int64 // individual reads searched
	MatchesTotal  atomic.Int64 // matches emitted across all reads
	ErrorsTotal   atomic.Int64 // per-read errors (bad input, cancelled)
	BatchesTotal  atomic.Int64 // POST /v1/search requests served
	RejectedTotal atomic.Int64 // requests refused with 4xx/503
	InFlight      atomic.Int64 // searches currently executing

	// The paper's work counters, aggregated from bwtmatch.Stats.
	MTreeLeavesTotal atomic.Int64 // Σ n' (Table 2)
	StepCallsTotal   atomic.Int64 // Σ BWT rank operations
	MemoHitsTotal    atomic.Int64 // Σ M-tree derivations

	IndexesLoaded  atomic.Int64
	IndexesEvicted atomic.Int64

	perMethod [8]histogram // indexed by bwtmatch.Method
}

// ObserveBatch records one completed search batch.
func (m *Metrics) ObserveBatch(method int, d time.Duration, reads, matches, errs int, leaves, steps, memo int64) {
	m.BatchesTotal.Add(1)
	m.QueriesTotal.Add(int64(reads))
	m.MatchesTotal.Add(int64(matches))
	m.ErrorsTotal.Add(int64(errs))
	m.MTreeLeavesTotal.Add(leaves)
	m.StepCallsTotal.Add(steps)
	m.MemoHitsTotal.Add(memo)
	if method >= 0 && method < len(m.perMethod) {
		m.perMethod[method].observe(d)
	}
}

// Snapshot renders all counters as a JSON-ready map.
func (m *Metrics) Snapshot() map[string]any {
	methods := make(map[string]any)
	for i := range m.perMethod {
		if m.perMethod[i].count.Load() == 0 {
			continue
		}
		name := methodNameFor(i)
		methods[name] = m.perMethod[i].snapshot()
	}
	return map[string]any{
		"queries_total":       m.QueriesTotal.Load(),
		"matches_total":       m.MatchesTotal.Load(),
		"errors_total":        m.ErrorsTotal.Load(),
		"batches_total":       m.BatchesTotal.Load(),
		"rejected_total":      m.RejectedTotal.Load(),
		"in_flight":           m.InFlight.Load(),
		"mtree_leaves_total":  m.MTreeLeavesTotal.Load(),
		"step_calls_total":    m.StepCallsTotal.Load(),
		"memo_hits_total":     m.MemoHitsTotal.Load(),
		"indexes_loaded":      m.IndexesLoaded.Load(),
		"indexes_evicted":     m.IndexesEvicted.Load(),
		"method_latencies_ms": methods,
	}
}

// methodNameFor inverts methodNames for display.
func methodNameFor(m int) string {
	for name, method := range methodNames {
		if int(method) == m && name != "" {
			return name
		}
	}
	return "unknown"
}

// ServeHTTP renders the snapshot, making Metrics mountable directly.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.Snapshot())
}
