package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bwtmatch"
)

// TestRegisterDuringDrain is a regression test for the shutdown drain
// racing index registration: while Shutdown waits on an in-flight
// search, concurrent RegisterIndex calls and registry reads must
// complete without deadlock (Shutdown must not hold the server mutex
// across the drain wait) and without data races (run under -race).
func TestRegisterDuringDrain(t *testing.T) {
	s, target := newTestServer(t, Config{}, 3000)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookSearchStart = func() {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// An in-flight search pins the drain open.
	searchDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/search", "application/json",
			strings.NewReader(fmt.Sprintf(`{"index":"g","k":1,"seq":%q}`, string(target[10:50]))))
		if err == nil {
			resp.Body.Close()
		}
		searchDone <- err
	}()
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Registration and listing racing the drain. A deadlock here (e.g.
	// Shutdown holding the server lock across inflight.Wait) trips the
	// timeout; a locking bug trips the race detector.
	regDone := make(chan error, 1)
	go func() {
		idx, err := bwtmatch.New(randomDNA(rand.New(rand.NewSource(43)), 400))
		if err != nil {
			regDone <- err
			return
		}
		regDone <- s.RegisterIndex("late", idx)
	}()
	select {
	case err := <-regDone:
		if err != nil {
			t.Fatalf("RegisterIndex during drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RegisterIndex deadlocked against Shutdown")
	}
	if got := s.reg.Len(); got != 2 {
		t.Errorf("registry has %d indexes during drain, want 2", got)
	}

	// The drain must still be pinned by the blocked search.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with a search in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-searchDone; err != nil {
		t.Fatalf("pinned search failed: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown after release: %v", err)
	}
}
