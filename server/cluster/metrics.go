package cluster

import (
	"io"

	"bwtmatch/internal/obs"
)

// Metrics aggregates coordinator-wide counters, striped like the
// worker-side server.Metrics (obs.ShardedCounter / ShardedHistogram)
// so concurrent batches do not bounce cache lines. /metrics renders
// the Prometheus exposition (km_cluster_* / km_cache_* series, see
// README "Observing"), /metrics.json the same data as JSON. Construct
// with NewMetrics.
type Metrics struct {
	BatchesTotal  obs.ShardedCounter // POST /v1/search batches served
	ReadsTotal    obs.ShardedCounter // individual reads in those batches
	MatchesTotal  obs.ShardedCounter // matches returned across all reads
	ErrorsTotal   obs.ShardedCounter // per-read errors
	RejectedTotal obs.ShardedCounter // requests refused with 4xx
	ShedTotal     obs.ShardedCounter // requests shed 503 by admission control
	InFlight      obs.ShardedCounter // batches currently executing
	PartialTotal  obs.ShardedCounter // batches answered with missing shards

	FanoutRPCs   obs.ShardedCounter // worker search RPCs issued
	RetriesTotal obs.ShardedCounter // subset retries (backoff + replica failover)
	WorkerErrors obs.ShardedCounter // failed worker RPC attempts

	CacheHits     obs.ShardedCounter // reads served from the hot-results cache
	CacheMisses   obs.ShardedCounter // reads that missed the cache
	InflightDedup obs.ShardedCounter // reads coalesced onto an in-flight identical query

	TracesTotal obs.ShardedCounter // batches traced end to end (sampled or forced)

	BatchLatency  *obs.ShardedHistogram // whole-batch wall time
	WorkerLatency *obs.ShardedHistogram // per-RPC worker wall time (successful attempts)
}

// NewMetrics builds Metrics (the histograms need allocation).
func NewMetrics() *Metrics {
	return &Metrics{
		BatchLatency:  obs.NewShardedLatencyHistogram(),
		WorkerLatency: obs.NewShardedLatencyHistogram(),
	}
}

// Snapshot renders all counters as a JSON-ready map (the /metrics.json
// document). Cache occupancy gauges are passed in by the coordinator,
// which owns the cache.
func (m *Metrics) Snapshot(cacheEntries int, cacheBytes int64) map[string]any {
	return map[string]any{
		"cluster_batches_total":         m.BatchesTotal.Load(),
		"cluster_reads_total":           m.ReadsTotal.Load(),
		"cluster_matches_total":         m.MatchesTotal.Load(),
		"cluster_read_errors_total":     m.ErrorsTotal.Load(),
		"cluster_rejected_total":        m.RejectedTotal.Load(),
		"cluster_shed_total":            m.ShedTotal.Load(),
		"cluster_in_flight":             m.InFlight.Load(),
		"cluster_partial_total":         m.PartialTotal.Load(),
		"cluster_fanout_rpcs_total":     m.FanoutRPCs.Load(),
		"cluster_retries_total":         m.RetriesTotal.Load(),
		"cluster_worker_errors_total":   m.WorkerErrors.Load(),
		"cache_hits_total":              m.CacheHits.Load(),
		"cache_misses_total":            m.CacheMisses.Load(),
		"cache_inflight_dedup_total":    m.InflightDedup.Load(),
		"cluster_traces_total":          m.TracesTotal.Load(),
		"cache_entries":                 cacheEntries,
		"cache_bytes":                   cacheBytes,
		"cluster_batch_latency_ms":      m.BatchLatency.Snapshot(),
		"cluster_worker_rpc_latency_ms": m.WorkerLatency.Snapshot(),
	}
}

// WritePrometheus emits every counter in Prometheus text exposition
// format 0.0.4.
func (m *Metrics) WritePrometheus(w io.Writer, cacheEntries int, cacheBytes int64) {
	obs.WriteCounter(w, "km_cluster_batches_total", "search batches served by the coordinator", m.BatchesTotal.Load())
	obs.WriteCounter(w, "km_cluster_reads_total", "individual reads in served batches", m.ReadsTotal.Load())
	obs.WriteCounter(w, "km_cluster_matches_total", "matches returned across all reads", m.MatchesTotal.Load())
	obs.WriteCounter(w, "km_cluster_read_errors_total", "per-read errors returned", m.ErrorsTotal.Load())
	obs.WriteCounter(w, "km_cluster_rejected_total", "requests refused with 4xx", m.RejectedTotal.Load())
	obs.WriteCounter(w, "km_cluster_shed_total", "requests shed 503 by admission control", m.ShedTotal.Load())
	obs.WriteGauge(w, "km_cluster_in_flight", "batches currently executing", m.InFlight.Load())
	obs.WriteCounter(w, "km_cluster_partial_total", "batches answered with missing shards", m.PartialTotal.Load())
	obs.WriteCounter(w, "km_cluster_fanout_rpcs_total", "worker search RPCs issued", m.FanoutRPCs.Load())
	obs.WriteCounter(w, "km_cluster_retries_total", "shard-subset retries (backoff and replica failover)", m.RetriesTotal.Load())
	obs.WriteCounter(w, "km_cluster_worker_errors_total", "failed worker RPC attempts", m.WorkerErrors.Load())
	obs.WriteCounter(w, "km_cache_hits_total", "reads served from the hot-results cache", m.CacheHits.Load())
	obs.WriteCounter(w, "km_cache_misses_total", "reads that missed the hot-results cache", m.CacheMisses.Load())
	obs.WriteCounter(w, "km_cache_inflight_dedup_total", "reads coalesced onto an in-flight identical query", m.InflightDedup.Load())
	obs.WriteCounter(w, "km_cluster_traces_total", "batches traced end to end (sampled or forced)", m.TracesTotal.Load())
	obs.WriteGauge(w, "km_cache_entries", "hot-results cache entries resident", int64(cacheEntries))
	obs.WriteGauge(w, "km_cache_bytes", "hot-results cache resident bytes", cacheBytes)
	if m.BatchLatency.Count() > 0 {
		obs.WriteHistogramMeta(w, "km_cluster_batch_latency_ms", "whole-batch wall time at the coordinator")
		m.BatchLatency.WritePrometheus(w, "km_cluster_batch_latency_ms", "")
	}
	if m.WorkerLatency.Count() > 0 {
		obs.WriteHistogramMeta(w, "km_cluster_worker_rpc_latency_ms", "successful worker RPC wall time")
		m.WorkerLatency.WritePrometheus(w, "km_cluster_worker_rpc_latency_ms", "")
	}
}
