package cluster

import (
	"sync"

	"bwtmatch/server"
)

// call is one in-flight logical query — the unit of coalescing. The
// leader (the goroutine that created it) runs the fan-out, stores the
// outcome, and closes done; followers block on done and read the same
// fields. After done is closed the fields are immutable.
type call struct {
	done    chan struct{}
	matches []server.Match
	errMsg  string
	partial bool
	failed  []int // shard ordinals missing when partial
}

// flightGroup deduplicates concurrent identical queries (singleflight
// keyed on index+method+k+pattern): the read simulators that dominate
// real traffic replay the same hot reads from many clients at once, and
// without coalescing every copy would fan out to the workers
// separately. The group holds only in-flight calls — completed results
// graduate to the LRU cache (or are dropped, for errors and partial
// answers).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*call
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*call)}
}

// join returns the call for key, creating it if absent. leader reports
// whether this caller created the call and therefore owes complete();
// followers wait on call.done.
func (g *flightGroup) join(key string) (c *call, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c = &call{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// complete publishes the outcome of a leader's call and wakes every
// follower. The key is removed first, so a query arriving after
// completion starts a fresh flight instead of reading a stale one.
func (g *flightGroup) complete(key string, c *call, matches []server.Match, errMsg string, partial bool, failed []int) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.matches = matches
	c.errMsg = errMsg
	c.partial = partial
	c.failed = failed
	close(c.done)
}
