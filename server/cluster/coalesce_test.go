package cluster

import (
	"sync"
	"testing"

	"bwtmatch/server"
)

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	lead, isLead := g.join("k")
	if !isLead {
		t.Fatal("first join not leader")
	}
	follow, isLead2 := g.join("k")
	if isLead2 || follow != lead {
		t.Fatal("second join did not coalesce onto the leader's call")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-follow.done
		if len(follow.matches) != 1 || follow.matches[0].Pos != 42 {
			t.Error("follower read wrong matches")
		}
	}()
	g.complete("k", lead, []server.Match{{Pos: 42}}, "", false, nil)
	wg.Wait()

	// After completion the key is free: a fresh join leads a new flight.
	again, isLead3 := g.join("k")
	if !isLead3 || again == lead {
		t.Fatal("completed key not released")
	}
	g.complete("k", again, nil, "boom", false, nil)
	if again.errMsg != "boom" {
		t.Fatal("error outcome lost")
	}
}
