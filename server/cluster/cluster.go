// Package cluster is the coordinator tier of a distributed kmserved
// fleet: a front-end HTTP service that owns shard→worker routing and
// fans each search batch out over plain kmserved workers.
//
// Topology. Every worker is an ordinary kmserved (bwtmatch/server)
// holding the same multi-shard index container; the sharded on-disk
// format loads shards lazily, so a worker asked only about shards
// {0, 3, 6} materializes only those and its resident set is the
// routed subset. The coordinator partitions an index's shards by
// primary owner (shard s → workers[s mod n]), sends one restricted
// SearchRequest{Shards: subset} per owner, and concatenates the
// owned, position-ordered results — the ownership-by-start-position
// rule from internal/shard makes the merge exactly-once and globally
// ordered, byte-identical to a single-process search.
//
// Resilience. Each subset request is bounded by a per-attempt worker
// timeout and retried with exponential backoff + jitter across the
// subset's replica chain (workers[(s+j) mod n]); a subset whose every
// replica fails degrades the batch to a Partial response naming the
// FailedShards instead of failing the whole batch.
//
// Efficiency. Identical in-flight queries (index, method, k, pattern)
// coalesce onto one fan-out (singleflight), completed full results
// populate a bounded hot-results LRU served without any worker RPC,
// and an admission-control gate sheds load with 503 + Retry-After once
// the queue behind the concurrency limit is full. Everything is
// observable via /metrics (km_cluster_*, km_cache_* series).
//
// Run with kmserved -coordinator -workers ... (see cmd/kmserved), load
// it with cmd/kmload.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bwtmatch/internal/obs"
	"bwtmatch/server/client"
)

// Config tunes a Coordinator. Workers is required; everything else has
// a usable zero value (see field comments for defaults applied by New).
type Config struct {
	// Workers lists the base URLs of the fleet's kmserved workers, e.g.
	// "http://10.0.0.1:7070". Order matters: it defines shard ownership
	// (shard s is primarily owned by Workers[s mod len(Workers)]) and
	// replica-chain rotation, so every coordinator replica must be
	// configured with the same order.
	Workers []string
	// Routes optionally pins the index→worker routing statically
	// (kmserved -routes). Nil enables discovery: the coordinator asks
	// the workers' /v1/indexes listings and routes every index all
	// reachable workers agree on.
	Routes *RouteTable
	// WorkerTimeout bounds each worker RPC attempt (default 10s).
	WorkerTimeout time.Duration
	// SubsetRetries is the number of extra attempts per shard subset
	// after the first fails, each against the next replica in the chain
	// (default 2; negative disables retries).
	SubsetRetries int
	// RetryBackoff is the base delay before a subset retry, doubled per
	// attempt with jitter (default 50ms).
	RetryBackoff time.Duration
	// MaxConcurrent caps batches executing simultaneously (default 16).
	MaxConcurrent int
	// QueueDepth caps batches waiting behind the MaxConcurrent gate;
	// beyond it requests are shed with 503 + Retry-After (default 64).
	QueueDepth int
	// RetryAfter is the hint sent with shed responses (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// DefaultTimeout bounds a batch that sets no timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// MaxBatch caps reads per request (default 4096).
	MaxBatch int
	// MaxK caps the per-read mismatch budget (default 64).
	MaxK int
	// MaxBodyBytes caps request body size (default 64 MiB).
	MaxBodyBytes int64
	// CacheEntries bounds the hot-results cache entry count; negative
	// disables the cache entirely (default 4096).
	CacheEntries int
	// CacheBytes bounds the hot-results cache resident bytes
	// (default 64 MiB).
	CacheBytes int64
	// TraceSample is the fraction of batches traced end to end (0..1;
	// default 0 = off). A sampled batch records coordinator spans, sets
	// X-Km-Trace on every worker RPC so the workers return their span
	// fragments, and the assembled cross-process timeline is kept for
	// /debug/trace. A client can also force a trace per request with the
	// X-Km-Trace header regardless of the sample rate.
	TraceSample float64
	// SLO declares the coordinator's service-level objectives; the zero
	// value applies the obs defaults. km_slo_* series on /metrics.
	SLO obs.SLOConfig
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger
}

func (c *Config) applyDefaults() {
	if c.WorkerTimeout <= 0 {
		c.WorkerTimeout = 10 * time.Second
	}
	if c.SubsetRetries < 0 {
		c.SubsetRetries = 0
	} else if c.SubsetRetries == 0 {
		c.SubsetRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxK <= 0 {
		c.MaxK = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
}

// worker is one fleet member: its base URL and the client handle the
// fan-out uses. The client carries no internal retries — retry policy
// (which replica, how long to back off) belongs to the coordinator's
// subset loop, which needs to switch workers between attempts.
type worker struct {
	url string
	c   *client.Client
}

// Coordinator is the cluster front-end. Create with New, mount via
// Handler, stop with Shutdown.
type Coordinator struct {
	cfg    Config
	mux    *http.ServeMux
	met    *Metrics
	cache  *resultCache
	flight *flightGroup

	workers     []*worker
	workerByURL map[string]*worker
	static      *RouteTable
	routes      routeCache

	sem      chan struct{} // MaxConcurrent slots
	pressure atomic.Int64  // batches admitted: executing + queued
	reqID    atomic.Int64
	log      *slog.Logger
	start    time.Time

	// frec is the always-on flight recorder: every batch (including shed
	// ones) leaves a fixed-size record behind, served on
	// /debug/flightrecorder. slo derives km_slo_* series from the batch
	// latency histogram. lastTrace holds the most recent sampled
	// cross-process timeline ([]obs.Fragment) for /debug/trace.
	frec      *obs.FlightRecorder
	slo       *obs.SLO
	lastTrace atomic.Value

	mu       sync.Mutex
	draining bool
	inflight int // in-flight batches
	// drained closes once draining is set and inflight reaches zero;
	// Shutdown selects on it against its context, so no waiter
	// goroutine is ever spawned (kmvet goroutinelifecycle).
	drained       chan struct{}
	drainedClosed bool
}

// New builds a Coordinator from cfg. It fails fast on an empty worker
// set and on a static route table naming a worker outside it; it does
// not contact the workers — discovery and static-route resolution
// happen lazily per index on first search.
func New(cfg Config) (*Coordinator, error) {
	cfg.applyDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	co := &Coordinator{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		met:         NewMetrics(),
		flight:      newFlightGroup(),
		workerByURL: make(map[string]*worker, len(cfg.Workers)),
		static:      cfg.Routes,
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		log:         cfg.Logger,
		start:       time.Now(),
		drained:     make(chan struct{}),
	}
	if co.log == nil {
		co.log = slog.New(slog.DiscardHandler)
	}
	co.frec = obs.NewFlightRecorder(64, 16, coordPhaseNames[:])
	co.slo = obs.NewSLO(cfg.SLO, co.met.BatchLatency, obs.DefaultLatencyBounds())
	if cfg.CacheEntries > 0 {
		co.cache = newResultCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	for _, u := range cfg.Workers {
		if u == "" {
			return nil, errors.New("cluster: empty worker URL")
		}
		if _, dup := co.workerByURL[u]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker URL %q", u)
		}
		// Timeout 0: the per-attempt context (WorkerTimeout) bounds each
		// RPC; a second transport-level clock would just race it.
		wk := &worker{url: u, c: client.New(u, client.WithTimeout(0))}
		co.workers = append(co.workers, wk)
		co.workerByURL[u] = wk
	}
	if co.static != nil {
		for name, e := range co.static.Indexes {
			for _, u := range e.Workers {
				if _, ok := co.workerByURL[u]; !ok {
					return nil, fmt.Errorf("%w: index %q routes to worker %q not in -workers", ErrRoutes, name, u)
				}
			}
		}
	}
	co.mux.HandleFunc("POST /v1/search", co.handleSearch)
	co.mux.HandleFunc("GET /v1/indexes", co.handleListIndexes)
	co.mux.HandleFunc("GET /healthz", co.handleHealth)
	co.mux.HandleFunc("GET /readyz", co.handleReady)
	co.mux.HandleFunc("GET /metrics", co.handleMetrics)
	co.mux.HandleFunc("GET /metrics.json", co.handleMetricsJSON)
	// Always mounted, like the worker's: recording costs nothing per
	// batch and the recorder is wanted exactly when nobody thought to
	// enable debugging beforehand.
	co.mux.Handle("GET /debug/flightrecorder", co.frec)
	co.mux.HandleFunc("GET /debug/trace", co.handleDebugTrace)
	return co, nil
}

// Coordinator flight-recorder phase slots (QueryRecord.PhaseNS order).
const (
	phasePlan     = iota // cache lookup + coalescing per read
	phaseRoute           // index→worker route resolution
	phaseFanout          // worker RPCs in flight (incl. retries)
	phaseMerge           // subset result merge + cache fill
	phaseAssemble        // follower waits + response assembly
	numCoordPhases
)

var coordPhaseNames = [numCoordPhases]string{
	"plan", "route", "fanout", "merge", "assemble",
}

// Handler returns the HTTP handler tree for mounting into an
// http.Server (or httptest).
func (co *Coordinator) Handler() http.Handler { return co.mux }

// Metrics exposes the counters (for tests and embedding).
func (co *Coordinator) Metrics() *Metrics { return co.met }

// Shutdown stops accepting searches and waits for in-flight batches to
// drain, or until ctx expires. It is idempotent.
func (co *Coordinator) Shutdown(ctx context.Context) error {
	co.mu.Lock()
	co.draining = true
	co.signalDrainedLocked()
	co.mu.Unlock()
	// The last end() closes drained, so shutdown needs no waiter
	// goroutine — a ctx-aborted shutdown leaves nothing behind.
	select {
	case <-co.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: shutdown: %w", ctx.Err())
	}
}

// signalDrainedLocked closes the drained channel once draining has
// begun and the last in-flight batch has finished. Caller holds co.mu.
func (co *Coordinator) signalDrainedLocked() {
	if co.draining && co.inflight == 0 && !co.drainedClosed {
		co.drainedClosed = true
		close(co.drained)
	}
}

// begin registers one in-flight batch; it fails once draining has
// started. The caller must invoke the returned func when done.
func (co *Coordinator) begin() (func(), bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.draining {
		return nil, false
	}
	co.inflight++
	return co.end, true
}

// end retires one in-flight batch; the last one out during a drain
// closes the drained channel Shutdown is selecting on.
func (co *Coordinator) end() {
	co.mu.Lock()
	co.inflight--
	co.signalDrainedLocked()
	co.mu.Unlock()
}

func (co *Coordinator) nextRequestID() string {
	return fmt.Sprintf("creq-%06d", co.reqID.Add(1))
}
