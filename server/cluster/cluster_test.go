package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"bwtmatch"
	"bwtmatch/internal/obs"
	"bwtmatch/server"
	"bwtmatch/server/client"
)

func randomDNA(rng *rand.Rand, n int) []byte {
	const bases = "acgt"
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

// fixture is a running mini-fleet: N workers each serving the same
// sharded index, fronted by one coordinator, all over real HTTP.
type fixture struct {
	genome  []byte
	sharded *bwtmatch.ShardedIndex
	workers []*server.Server
	co      *Coordinator
	base    string // coordinator URL
	cl      *client.Client
}

func newFixture(t *testing.T, nWorkers int, mod func(*Config)) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	genome := randomDNA(rng, 6000)
	sx, err := bwtmatch.NewSharded(genome,
		bwtmatch.WithShards(5), bwtmatch.WithMaxPatternLen(64))
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{genome: genome, sharded: sx}
	urls := make([]string, nWorkers)
	for i := 0; i < nWorkers; i++ {
		ws := server.New(server.Config{})
		if err := ws.RegisterIndex("g", sx); err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(ws.Handler())
		t.Cleanup(hs.Close)
		f.workers = append(f.workers, ws)
		urls[i] = hs.URL
	}
	cfg := Config{Workers: urls, RetryBackoff: time.Millisecond}
	if mod != nil {
		mod(&cfg)
	}
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.co = co
	hs := httptest.NewServer(co.Handler())
	t.Cleanup(hs.Close)
	f.base = hs.URL
	f.cl = client.New(hs.URL)
	return f
}

// boundaryReads builds a read set that exercises the merge: random
// reads, one read straddling every shard-ownership boundary, a
// duplicated hot read, and one overlong read that must error.
func (f *fixture) boundaryReads(t *testing.T, rng *rand.Rand) []server.Read {
	t.Helper()
	var reads []server.Read
	const patLen = 48
	mutate := func(p []byte) string {
		q := append([]byte(nil), p...)
		q[rng.Intn(len(q))] = "acgt"[rng.Intn(4)]
		return string(q)
	}
	for i := 0; i < 8; i++ {
		start := rng.Intn(len(f.genome) - patLen)
		reads = append(reads, server.Read{Seq: mutate(f.genome[start : start+patLen])})
	}
	for i, si := range f.sharded.ShardInfo() {
		if i == 0 {
			continue
		}
		// A pattern centered on the shard's start position straddles the
		// ownership boundary; the overlap guarantees the owner sees it.
		start := si.Start - patLen/2
		reads = append(reads, server.Read{Seq: mutate(f.genome[start : start+patLen])})
	}
	hot := string(f.genome[100 : 100+patLen])
	reads = append(reads, server.Read{Seq: hot}, server.Read{Seq: hot}, server.Read{Seq: hot})
	reads = append(reads, server.Read{Seq: string(randomDNA(rng, f.sharded.MaxPatternLen()+1))})
	return reads
}

// expected computes the single-process ground truth for reads.
func (f *fixture) expected(t *testing.T, reads []server.Read, k int) []server.ReadResult {
	t.Helper()
	queries := make([]bwtmatch.Query, len(reads))
	for i, rd := range reads {
		clean, _ := bwtmatch.Sanitize([]byte(rd.Seq))
		queries[i] = bwtmatch.Query{Pattern: clean, K: k}
	}
	results := f.sharded.MapAllContext(context.Background(), queries, bwtmatch.AlgorithmA, 2)
	out := make([]server.ReadResult, len(results))
	for i, res := range results {
		rr := server.ReadResult{Matches: []server.Match{}}
		if res.Err != nil {
			rr.Error = res.Err.Error()
		} else {
			for _, m := range res.Matches {
				rr.Matches = append(rr.Matches, server.Match{Pos: m.Pos, Mismatches: m.Mismatches})
			}
			if rr.Matches == nil {
				rr.Matches = []server.Match{}
			}
		}
		out[i] = rr
	}
	return out
}

func assertEqualResults(t *testing.T, got []server.ReadResult, want []server.ReadResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Error != w.Error {
			t.Errorf("read %d: error %q, want %q", i, g.Error, w.Error)
			continue
		}
		if len(g.Matches) == 0 && len(w.Matches) == 0 {
			continue
		}
		if !reflect.DeepEqual(g.Matches, w.Matches) {
			t.Errorf("read %d: matches %v, want %v", i, g.Matches, w.Matches)
		}
	}
}

// TestClusterEquivalence is the correctness property of the tier: a
// coordinator fanning out over workers — boundary-straddling reads,
// per-read errors, coalesced duplicates and all — returns exactly what
// a single process searching the same sharded index returns, in the
// same global position order.
func TestClusterEquivalence(t *testing.T) {
	for _, nWorkers := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("workers=%d", nWorkers), func(t *testing.T) {
			f := newFixture(t, nWorkers, nil)
			rng := rand.New(rand.NewSource(int64(nWorkers)))
			reads := f.boundaryReads(t, rng)
			want := f.expected(t, reads, 2)

			resp, err := f.cl.Search(context.Background(),
				server.SearchRequest{Index: "g", K: 2, Reads: reads})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Partial || len(resp.FailedShards) != 0 {
				t.Fatalf("unexpected partial response: %+v", resp.FailedShards)
			}
			assertEqualResults(t, resp.Results, want)

			if rpcs := f.co.met.FanoutRPCs.Load(); rpcs < int64(min(nWorkers, 5)) {
				t.Errorf("fan-out used %d RPCs, want >= %d subsets", rpcs, min(nWorkers, 5))
			}
			// The triple hot read coalesces: two followers.
			if d := f.co.met.InflightDedup.Load(); d < 2 {
				t.Errorf("in-flight dedup %d, want >= 2", d)
			}
		})
	}
}

// TestClusterCacheHits pins the hot-results path: repeating a batch
// serves it entirely from the coordinator's cache — no new worker RPCs.
func TestClusterCacheHits(t *testing.T) {
	f := newFixture(t, 2, nil)
	rng := rand.New(rand.NewSource(9))
	reads := f.boundaryReads(t, rng)
	// Drop the erroring read: error results are deliberately not cached.
	reads = reads[:len(reads)-1]
	want := f.expected(t, reads, 2)

	first, err := f.cl.Search(context.Background(), server.SearchRequest{Index: "g", K: 2, Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	rpcsAfterFirst := f.co.met.FanoutRPCs.Load()

	second, err := f.cl.Search(context.Background(), server.SearchRequest{Index: "g", K: 2, Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	assertEqualResults(t, first.Results, want)
	assertEqualResults(t, second.Results, want)

	if hits := f.co.met.CacheHits.Load(); hits < int64(len(reads)) {
		t.Errorf("cache hits %d, want >= %d (whole second batch)", hits, len(reads))
	}
	if rpcs := f.co.met.FanoutRPCs.Load(); rpcs != rpcsAfterFirst {
		t.Errorf("second batch cost %d extra RPCs, want 0", rpcs-rpcsAfterFirst)
	}
	if n, _ := f.co.cache.stats(); n == 0 {
		t.Error("cache empty after full batches")
	}
}

// TestClusterDrainRetry is the drain-during-fan-out property: a worker
// that drains mid-run makes its subsets fail over to the replica, and
// the merged results stay complete and identical — no duplicates, no
// missing boundary matches — while batches keep flowing.
func TestClusterDrainRetry(t *testing.T) {
	f := newFixture(t, 2, func(c *Config) {
		c.SubsetRetries = 2
		c.CacheEntries = -1 // force every batch through the fan-out
	})
	rng := rand.New(rand.NewSource(17))
	reads := f.boundaryReads(t, rng)
	want := f.expected(t, reads, 2)

	check := func(resp *server.SearchResponse, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Partial {
			t.Fatalf("partial response despite a live replica: failed shards %v", resp.FailedShards)
		}
		assertEqualResults(t, resp.Results, want)
	}

	// Healthy fleet first, then drain worker 0 while a stream of batches
	// is in flight; every batch must stay complete via the replica.
	check(f.cl.Search(context.Background(), server.SearchRequest{Index: "g", K: 2, Reads: reads}))

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := f.workers[0].Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	for i := 0; i < 6; i++ {
		check(f.cl.Search(context.Background(), server.SearchRequest{Index: "g", K: 2, Reads: reads}))
	}
	<-drained
	// Fully drained now: the 503s must have driven the retry path.
	check(f.cl.Search(context.Background(), server.SearchRequest{Index: "g", K: 2, Reads: reads}))
	if f.co.met.RetriesTotal.Load() == 0 {
		t.Error("no subset retries recorded despite a drained worker")
	}
	if f.co.met.WorkerErrors.Load() == 0 {
		t.Error("no worker errors recorded despite a drained worker")
	}
}

// TestClusterPartial pins the degraded mode: when every replica of a
// subset is unreachable and retries are disabled, the batch comes back
// Partial with exactly the unowned shards listed, and nothing lands in
// the cache.
func TestClusterPartial(t *testing.T) {
	// A port with nothing listening: connection refused immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	f := newFixture(t, 1, func(c *Config) {
		c.Workers = append(c.Workers, deadURL)
		c.SubsetRetries = -1
		c.Routes = &RouteTable{Indexes: map[string]RouteEntry{
			"g": {Shards: 5, Workers: append([]string{}, c.Workers...)},
		}}
	})
	rng := rand.New(rand.NewSource(23))
	reads := f.boundaryReads(t, rng)
	reads = reads[:len(reads)-1] // keep only clean reads

	resp, err := f.cl.Search(context.Background(), server.SearchRequest{Index: "g", K: 2, Reads: reads})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Fatal("response not partial despite a dead sole replica")
	}
	// Worker 1 (dead) is primary for the odd shards.
	if want := []int{1, 3}; !reflect.DeepEqual(resp.FailedShards, want) {
		t.Errorf("failed shards %v, want %v", resp.FailedShards, want)
	}
	if f.co.met.PartialTotal.Load() != 1 {
		t.Errorf("partial_total %d, want 1", f.co.met.PartialTotal.Load())
	}
	if n, _ := f.co.cache.stats(); n != 0 {
		t.Errorf("%d partial results cached, want none", n)
	}

	// The surviving even shards still answer correctly: their matches
	// are a subset of the ground truth, in order.
	want := f.expected(t, reads, 2)
	for i, rr := range resp.Results {
		for _, m := range rr.Matches {
			found := false
			for _, wm := range want[i].Matches {
				if wm == m {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("read %d: spurious match %+v in partial response", i, m)
			}
		}
	}
}

// TestClusterShedding drives the admission gate: with one slot and one
// queue position against a stalled worker, concurrent batches beyond
// the cap are shed immediately with 503 + Retry-After.
func TestClusterShedding(t *testing.T) {
	release := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/search") {
			<-release // blocks until the test closes the gate
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"index":"g","method":"a","results":[{"matches":[]}],"reads":1}`)
	}))
	defer stalled.Close()

	co, err := New(Config{
		Workers:       []string{stalled.URL},
		MaxConcurrent: 1,
		QueueDepth:    1,
		CacheEntries:  -1,
		RetryAfter:    2 * time.Second,
		Routes: &RouteTable{Indexes: map[string]RouteEntry{
			"g": {Shards: 0, Workers: []string{stalled.URL}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(co.Handler())
	defer hs.Close()

	const n = 6
	codes := make([]int, n)
	retryAfter := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"index":"g","k":0,"seq":"%s"}`,
				string(randomDNA(rand.New(rand.NewSource(int64(i))), 20)))
			resp, err := http.Post(hs.URL+"/v1/search", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	// Wait for proof of shedding, then open the gate so the admitted
	// requests (at most MaxConcurrent+QueueDepth) can finish.
	deadline := time.Now().Add(10 * time.Second)
	for co.met.ShedTotal.Load() == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	shed := 0
	for i, code := range codes {
		if code == http.StatusServiceUnavailable {
			shed++
			if retryAfter[i] != "2" {
				t.Errorf("shed response %d Retry-After %q, want \"2\"", i, retryAfter[i])
			}
		}
	}
	if shed == 0 {
		t.Fatal("no requests shed despite queue overflow")
	}
	if got := co.met.ShedTotal.Load(); got != int64(shed) {
		t.Errorf("shed_total %d, want %d", got, shed)
	}
}

// TestClusterMetricsEndpoints validates the exposition after real
// traffic: /metrics parses as Prometheus text format 0.0.4 with the
// km_cluster_*/km_cache_* series present, and /metrics.json decodes.
func TestClusterMetricsEndpoints(t *testing.T) {
	f := newFixture(t, 2, nil)
	rng := rand.New(rand.NewSource(31))
	reads := f.boundaryReads(t, rng)
	for i := 0; i < 2; i++ {
		if _, err := f.cl.Search(context.Background(),
			server.SearchRequest{Index: "g", K: 2, Reads: reads}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(f.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"km_cluster_batches_total 2",
		"km_cluster_fanout_rpcs_total",
		"km_cache_hits_total",
		"km_cache_entries",
		"km_cluster_batch_latency_ms_bucket",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in /metrics", want)
		}
	}

	snap, err := f.cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap["cluster_batches_total"].(float64) != 2 {
		t.Errorf("cluster_batches_total = %v, want 2", snap["cluster_batches_total"])
	}
}

// TestClusterDiscoveryListing exercises /v1/indexes on the coordinator:
// a discovery round against the workers yields the index with its
// shard count and both owners.
func TestClusterDiscoveryListing(t *testing.T) {
	f := newFixture(t, 2, nil)
	resp, err := http.Get(f.base + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rt RouteTable
	if err := json.NewDecoder(resp.Body).Decode(&rt); err != nil {
		t.Fatal(err)
	}
	e, ok := rt.Indexes["g"]
	if !ok || e.Shards != 5 || len(e.Workers) != 2 {
		t.Fatalf("discovered routing %+v", rt.Indexes)
	}
}

// TestClusterRejects pins the 4xx surface.
func TestClusterRejects(t *testing.T) {
	f := newFixture(t, 1, nil)
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(f.base+"/v1/search", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := map[string]struct {
		body string
		want int
	}{
		"client shards":  {`{"index":"g","k":1,"seq":"acgt","shards":[0]}`, http.StatusBadRequest},
		"no reads":       {`{"index":"g","k":1}`, http.StatusBadRequest},
		"bad method":     {`{"index":"g","k":1,"seq":"acgt","method":"nope"}`, http.StatusBadRequest},
		"no index":       {`{"k":1,"seq":"acgt"}`, http.StatusBadRequest},
		"unknown index":  {`{"index":"missing","k":1,"seq":"acgt"}`, http.StatusNotFound},
		"negative k":     {`{"index":"g","k":-1,"seq":"acgt"}`, http.StatusBadRequest},
		"trailing junk":  {`{"index":"g","k":1,"seq":"acgt"} {}`, http.StatusBadRequest},
		"seq plus reads": {`{"index":"g","k":1,"seq":"acgt","reads":[{"seq":"acgt"}]}`, http.StatusBadRequest},
	}
	for name, tc := range cases {
		if got := post(tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", name, got, tc.want)
		}
	}
}

// TestCoordinatorDrain pins the coordinator's own lifecycle: after
// Shutdown both probes flip to 503 and new searches are refused.
func TestCoordinatorDrain(t *testing.T) {
	f := newFixture(t, 1, nil)
	if err := f.cl.Ready(context.Background()); err != nil {
		t.Fatalf("not ready while idle: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.co.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.cl.Health(ctx); client.StatusCode(err) != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: %v", err)
	}
	if err := f.cl.Ready(ctx); client.StatusCode(err) != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %v", err)
	}
	_, err := f.cl.Search(ctx, server.SearchRequest{Index: "g", K: 1, Seq: "acgtacgt"})
	if client.StatusCode(err) != http.StatusServiceUnavailable {
		t.Errorf("search after drain: %v", err)
	}
}
