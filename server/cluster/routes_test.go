package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeRoutes(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "routes.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRoutesFile(t *testing.T) {
	good := `{"indexes": {"hg": {"shards": 8, "workers": ["http://a:1", "http://b:1"]}}}`
	rt, err := LoadRoutesFile(writeRoutes(t, good))
	if err != nil {
		t.Fatal(err)
	}
	if e := rt.Indexes["hg"]; e.Shards != 8 || len(e.Workers) != 2 {
		t.Fatalf("parsed entry %+v", e)
	}

	bad := map[string]string{
		"missing file":     "",
		"syntax":           `{"indexes": }`,
		"unknown field":    `{"indexes": {}, "extra": 1}`,
		"no indexes":       `{"indexes": {}}`,
		"no workers":       `{"indexes": {"hg": {"shards": 2, "workers": []}}}`,
		"negative shards":  `{"indexes": {"hg": {"shards": -1, "workers": ["http://a:1"]}}}`,
		"duplicate worker": `{"indexes": {"hg": {"shards": 2, "workers": ["http://a:1", "http://a:1"]}}}`,
		"empty worker":     `{"indexes": {"hg": {"shards": 2, "workers": [""]}}}`,
	}
	for name, body := range bad {
		path := filepath.Join(t.TempDir(), "nope.json")
		if body != "" {
			path = writeRoutes(t, body)
		}
		if _, err := LoadRoutesFile(path); !errors.Is(err, ErrRoutes) {
			t.Errorf("%s: error %v, want ErrRoutes", name, err)
		}
	}
}

// TestSubsetsPartition pins the routing algebra: for any shard count
// and worker count, the subsets cover every shard exactly once, shard s
// lands in the subset of workers[s mod n], and each subset's replica
// chain is a rotation starting at its primary.
func TestSubsetsPartition(t *testing.T) {
	mk := func(n int) []*worker {
		ws := make([]*worker, n)
		for i := range ws {
			ws[i] = &worker{url: string(rune('a' + i))}
		}
		return ws
	}
	for _, tc := range []struct{ shards, workers int }{
		{7, 3}, {8, 2}, {1, 4}, {3, 3}, {16, 5},
	} {
		r := route{index: "g", shards: tc.shards, owners: mk(tc.workers)}
		subs := r.subsets()
		seen := make(map[int]int)
		for p, sub := range subs {
			if len(sub.chain) != tc.workers {
				t.Fatalf("%d/%d: subset %d chain len %d", tc.shards, tc.workers, p, len(sub.chain))
			}
			if sub.chain[0] != r.owners[p%tc.workers] {
				t.Errorf("%d/%d: subset %d primary %q, want %q",
					tc.shards, tc.workers, p, sub.chain[0].url, r.owners[p%tc.workers].url)
			}
			prev := -1
			for _, s := range sub.shards {
				if s%tc.workers != p {
					t.Errorf("%d/%d: shard %d in subset %d", tc.shards, tc.workers, s, p)
				}
				if s <= prev {
					t.Errorf("%d/%d: subset %d not strictly increasing: %v", tc.shards, tc.workers, p, sub.shards)
				}
				prev = s
				seen[s]++
			}
		}
		for s := 0; s < tc.shards; s++ {
			if seen[s] != 1 {
				t.Errorf("%d/%d: shard %d covered %d times", tc.shards, tc.workers, s, seen[s])
			}
		}
	}

	// Monolithic: one subset, nil shards, full chain.
	r := route{index: "g", shards: 0, owners: mk(3)}
	subs := r.subsets()
	if len(subs) != 1 || subs[0].shards != nil || len(subs[0].chain) != 3 {
		t.Fatalf("monolithic subsets: %+v", subs)
	}
}
