package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"bwtmatch"
	"bwtmatch/internal/obs"
	"bwtmatch/server"
)

// readPlan records how one read of a batch will be answered: straight
// from the hot-results cache, as the leader of a coalesced flight (this
// batch runs the fan-out), or as a follower of a flight led elsewhere.
type readPlan struct {
	id     string
	cached []server.Match // cache hit; nil otherwise
	hit    bool
	call   *call
	leader bool
	key    string
	lidx   int // index into the leader sub-batch when leader
}

func (co *Coordinator) fail(w http.ResponseWriter, code int, format string, args ...any) {
	co.met.RejectedTotal.Add(1)
	msg := fmt.Sprintf(format, args...)
	co.log.Warn("request rejected", "code", code, "error", msg)
	writeJSON(w, code, server.ErrorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// decodeBody parses a size-capped JSON body, rejecting unknown fields
// and trailing garbage (same contract as the worker's decoder).
func decodeBody(r *http.Request, maxBytes int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func (co *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	draining := co.draining
	co.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "coordinator"})
}

func (co *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	draining := co.draining
	co.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "role": "coordinator"})
}

// handleListIndexes reports the coordinator's routing view as a
// RouteTable document. With static routes that is the configured table;
// with discovery it runs a discovery round first, so the listing
// doubles as a fleet probe.
func (co *Coordinator) handleListIndexes(w http.ResponseWriter, r *http.Request) {
	if co.static != nil {
		writeJSON(w, http.StatusOK, co.static)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.WorkerTimeout)
	defer cancel()
	// Errors mean only that the probed name is unknown; the round still
	// populated the cache with every index the fleet agrees on.
	co.discover(ctx, "")
	co.routes.mu.RLock()
	rt := RouteTable{Indexes: make(map[string]RouteEntry, len(co.routes.routes))}
	for name, rte := range co.routes.routes {
		urls := make([]string, len(rte.owners))
		for i, wk := range rte.owners {
			urls[i] = wk.url
		}
		rt.Indexes[name] = RouteEntry{Shards: rte.shards, Workers: urls}
	}
	co.routes.mu.RUnlock()
	writeJSON(w, http.StatusOK, rt)
}

func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, bytes := co.cache.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	co.met.WritePrometheus(w, entries, bytes)
}

func (co *Coordinator) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	entries, bytes := co.cache.stats()
	writeJSON(w, http.StatusOK, co.met.Snapshot(entries, bytes))
}

func (co *Coordinator) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req server.SearchRequest
	if err := decodeBody(r, co.cfg.MaxBodyBytes, &req); err != nil {
		co.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Shards) > 0 {
		// Shard routing is the coordinator's job; accepting a client's
		// subset would break the exactly-once merge.
		co.fail(w, http.StatusBadRequest, "shards cannot be set on a coordinator request")
		return
	}
	method, err := server.ParseMethod(req.Method)
	if err != nil {
		co.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The canonical wire token ("a"), not the display name: it keys the
	// cache and goes back out to the workers.
	methodName := server.MethodName(method)
	reads := req.Reads
	if req.Seq != "" {
		if len(reads) > 0 {
			co.fail(w, http.StatusBadRequest, "set either seq or reads, not both")
			return
		}
		reads = []server.Read{{Seq: req.Seq}}
	}
	if len(reads) == 0 {
		co.fail(w, http.StatusBadRequest, "no reads in request")
		return
	}
	if len(reads) > co.cfg.MaxBatch {
		co.fail(w, http.StatusRequestEntityTooLarge,
			"batch of %d exceeds limit %d", len(reads), co.cfg.MaxBatch)
		return
	}
	if req.Index == "" {
		co.fail(w, http.StatusBadRequest, "index is required")
		return
	}

	// Admission control: pressure counts batches admitted past this
	// point — executing plus queued on the sem. Beyond the queue cap the
	// batch is shed immediately with a backoff hint rather than left to
	// time out in line.
	if co.pressure.Add(1) > int64(co.cfg.MaxConcurrent+co.cfg.QueueDepth) {
		co.pressure.Add(-1)
		co.met.ShedTotal.Add(1)
		secs := int(co.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		co.log.Warn("request shed", "index", req.Index, "reads", len(reads))
		writeJSON(w, http.StatusServiceUnavailable,
			server.ErrorResponse{Error: "coordinator overloaded; retry later"})
		return
	}
	defer co.pressure.Add(-1)

	done, ok := co.begin()
	if !ok {
		co.fail(w, http.StatusServiceUnavailable, "coordinator is draining")
		return
	}
	defer done()

	timeout := co.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	rid := co.nextRequestID()
	ctx, cancel := context.WithTimeout(obs.WithRequestID(r.Context(), rid), timeout)
	defer cancel()

	select {
	case co.sem <- struct{}{}:
	case <-ctx.Done():
		co.fail(w, http.StatusServiceUnavailable, "timed out waiting for a batch slot")
		return
	}
	defer func() { <-co.sem }()

	co.met.InFlight.Add(1)
	defer co.met.InFlight.Add(-1)
	start := time.Now()

	// Plan every read: sanitize the pattern (the key must match what
	// workers will actually search), then cache → singleflight. The
	// first occurrence of a key becomes the flight's leader; duplicates
	// in the same batch and concurrent batches become followers.
	plans := make([]readPlan, len(reads))
	var leaderReads []server.Read
	var leaderPlans []*readPlan
	for i, rd := range reads {
		k := req.K
		if rd.K != nil {
			k = *rd.K
		}
		if k < 0 || k > co.cfg.MaxK {
			co.fail(w, http.StatusBadRequest, "read %d: k=%d outside [0,%d]", i, k, co.cfg.MaxK)
			// Leaders already registered must complete or followers in
			// other batches would hang.
			co.abandonLeaders(leaderPlans, "batch rejected")
			return
		}
		clean, _ := bwtmatch.Sanitize([]byte(rd.Seq))
		key := cacheKey(req.Index, methodName, k, clean)
		p := &plans[i]
		p.id = rd.ID
		p.key = key
		if m, ok := co.cache.get(key); ok {
			co.met.CacheHits.Add(1)
			p.cached, p.hit = m, true
			continue
		}
		co.met.CacheMisses.Add(1)
		c, leader := co.flight.join(key)
		p.call, p.leader = c, leader
		if leader {
			p.lidx = len(leaderReads)
			kk := k
			leaderReads = append(leaderReads, server.Read{Seq: string(clean), K: &kk})
			leaderPlans = append(leaderPlans, p)
		} else {
			co.met.InflightDedup.Add(1)
		}
	}

	// The leaders' sub-batch fans out once for all of them.
	var failedShards []int
	partial := false
	if len(leaderReads) > 0 {
		rt, err := co.resolve(ctx, req.Index)
		if err != nil {
			co.abandonLeaders(leaderPlans, err.Error())
			code := http.StatusBadGateway
			if errors.Is(err, ErrNoRoute) {
				code = http.StatusNotFound
			}
			co.fail(w, code, "%v", err)
			return
		}
		outs := co.fanout(ctx, rt, leaderReads, req.K, methodName, req.TimeoutMS)
		results, failed, part := merge(len(leaderReads), outs)
		failedShards, partial = failed, part
		for _, p := range leaderPlans {
			rr := results[p.lidx]
			co.flight.complete(p.key, p.call, rr.Matches, rr.Error, part, failed)
			if !part && rr.Error == "" {
				co.cache.put(p.key, rr.Matches)
			}
		}
	}

	// Assemble: cache hits and leaders are already settled; followers
	// wait for their flight's leader (possibly in another batch).
	resp := server.SearchResponse{
		Index:  req.Index,
		Method: method.String(), // display name, like the worker tier

		Reads:   len(reads),
		Results: make([]server.ReadResult, len(reads)),
	}
	seenFailed := make(map[int]bool, len(failedShards))
	for _, s := range failedShards {
		seenFailed[s] = true
	}
	for i := range plans {
		p := &plans[i]
		rr := server.ReadResult{ID: p.id, Matches: []server.Match{}}
		switch {
		case p.hit:
			rr.Matches = p.cached
		case p.leader:
			rr.Matches, rr.Error = p.call.matches, p.call.errMsg
		default:
			select {
			case <-p.call.done:
				rr.Matches, rr.Error = p.call.matches, p.call.errMsg
				if p.call.partial {
					partial = true
					for _, s := range p.call.failed {
						if !seenFailed[s] {
							seenFailed[s] = true
							failedShards = append(failedShards, s)
						}
					}
				}
			case <-ctx.Done():
				rr.Error = fmt.Sprintf("waiting for coalesced result: %v", ctx.Err())
			}
		}
		if rr.Error != "" {
			rr.Matches = []server.Match{}
			resp.Errors++
		} else if rr.Matches == nil {
			rr.Matches = []server.Match{}
		}
		resp.Matches += len(rr.Matches)
		resp.Results[i] = rr
	}
	if partial {
		resp.Partial = true
		resp.FailedShards = sortedInts(failedShards)
		co.met.PartialTotal.Add(1)
	}
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	co.met.BatchesTotal.Add(1)
	co.met.ReadsTotal.Add(int64(len(reads)))
	co.met.MatchesTotal.Add(int64(resp.Matches))
	co.met.ErrorsTotal.Add(int64(resp.Errors))
	co.met.BatchLatency.Observe(elapsed)
	co.log.Info("cluster search",
		"rid", rid,
		"index", req.Index,
		"method", methodName,
		"reads", len(reads),
		"fanned_out", len(leaderReads),
		"matches", resp.Matches,
		"errors", resp.Errors,
		"partial", resp.Partial,
		"elapsed_ms", resp.ElapsedMS)
	writeJSON(w, http.StatusOK, resp)
}

// abandonLeaders completes every registered leader call with an error
// so cross-batch followers waiting on them wake instead of hanging.
func (co *Coordinator) abandonLeaders(leaders []*readPlan, msg string) {
	for _, p := range leaders {
		co.flight.complete(p.key, p.call, nil, msg, false, nil)
	}
}

func sortedInts(s []int) []int {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}
