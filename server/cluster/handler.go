package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"bwtmatch"
	"bwtmatch/internal/obs"
	"bwtmatch/server"
)

// readPlan records how one read of a batch will be answered: straight
// from the hot-results cache, as the leader of a coalesced flight (this
// batch runs the fan-out), or as a follower of a flight led elsewhere.
type readPlan struct {
	id     string
	cached []server.Match // cache hit; nil otherwise
	hit    bool
	call   *call
	leader bool
	key    string
	lidx   int // index into the leader sub-batch when leader
}

func (co *Coordinator) fail(w http.ResponseWriter, rid string, code int, format string, args ...any) {
	co.met.RejectedTotal.Add(1)
	msg := fmt.Sprintf(format, args...)
	co.log.Warn("request rejected", "rid", rid, "code", code, "error", msg)
	writeJSON(w, code, server.ErrorResponse{Error: msg, RequestID: rid})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// decodeBody parses a size-capped JSON body, rejecting unknown fields
// and trailing garbage (same contract as the worker's decoder).
func decodeBody(r *http.Request, maxBytes int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

func (co *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	draining := co.draining
	co.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "coordinator"})
}

func (co *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	co.mu.Lock()
	draining := co.draining
	co.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "role": "coordinator"})
}

// handleListIndexes reports the coordinator's routing view as a
// RouteTable document. With static routes that is the configured table;
// with discovery it runs a discovery round first, so the listing
// doubles as a fleet probe.
func (co *Coordinator) handleListIndexes(w http.ResponseWriter, r *http.Request) {
	if co.static != nil {
		writeJSON(w, http.StatusOK, co.static)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.WorkerTimeout)
	defer cancel()
	// Errors mean only that the probed name is unknown; the round still
	// populated the cache with every index the fleet agrees on.
	co.discover(ctx, "")
	co.routes.mu.RLock()
	rt := RouteTable{Indexes: make(map[string]RouteEntry, len(co.routes.routes))}
	for name, rte := range co.routes.routes {
		urls := make([]string, len(rte.owners))
		for i, wk := range rte.owners {
			urls[i] = wk.url
		}
		rt.Indexes[name] = RouteEntry{Shards: rte.shards, Workers: urls}
	}
	co.routes.mu.RUnlock()
	writeJSON(w, http.StatusOK, rt)
}

func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, bytes := co.cache.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	co.met.WritePrometheus(w, entries, bytes)
	co.slo.WritePrometheus(w)
}

func (co *Coordinator) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	entries, bytes := co.cache.stats()
	writeJSON(w, http.StatusOK, co.met.Snapshot(entries, bytes))
}

func (co *Coordinator) handleSearch(w http.ResponseWriter, r *http.Request) {
	arrive := time.Now()
	// Adopt the caller's request ID or mint one, and echo it in the
	// response header before anything can fail, so every outcome —
	// success, rejection, shed — carries the correlation handle.
	rid := r.Header.Get(server.HeaderRequestID)
	if rid == "" {
		rid = co.nextRequestID()
	}
	w.Header().Set(server.HeaderRequestID, rid)
	traced := server.TraceHeaderSet(r.Header.Get(server.HeaderTrace)) || co.sampleTrace()

	var req server.SearchRequest
	if err := decodeBody(r, co.cfg.MaxBodyBytes, &req); err != nil {
		co.fail(w, rid, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Shards) > 0 {
		// Shard routing is the coordinator's job; accepting a client's
		// subset would break the exactly-once merge.
		co.fail(w, rid, http.StatusBadRequest, "shards cannot be set on a coordinator request")
		return
	}
	method, err := server.ParseMethod(req.Method)
	if err != nil {
		co.fail(w, rid, http.StatusBadRequest, "%v", err)
		return
	}
	// The canonical wire token ("a"), not the display name: it keys the
	// cache and goes back out to the workers.
	methodName := server.MethodName(method)
	reads := req.Reads
	if req.Seq != "" {
		if len(reads) > 0 {
			co.fail(w, rid, http.StatusBadRequest, "set either seq or reads, not both")
			return
		}
		reads = []server.Read{{Seq: req.Seq}}
	}
	if len(reads) == 0 {
		co.fail(w, rid, http.StatusBadRequest, "no reads in request")
		return
	}
	if len(reads) > co.cfg.MaxBatch {
		co.fail(w, rid, http.StatusRequestEntityTooLarge,
			"batch of %d exceeds limit %d", len(reads), co.cfg.MaxBatch)
		return
	}
	if req.Index == "" {
		co.fail(w, rid, http.StatusBadRequest, "index is required")
		return
	}

	// Admission control: pressure counts batches admitted past this
	// point — executing plus queued on the sem. Beyond the queue cap the
	// batch is shed immediately with a backoff hint rather than left to
	// time out in line.
	if co.pressure.Add(1) > int64(co.cfg.MaxConcurrent+co.cfg.QueueDepth) {
		co.pressure.Add(-1)
		co.met.ShedTotal.Add(1)
		secs := int(co.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		co.log.Warn("request shed", "rid", rid, "index", req.Index, "reads", len(reads))
		writeJSON(w, http.StatusServiceUnavailable,
			server.ErrorResponse{Error: "coordinator overloaded; retry later", RequestID: rid})
		co.recordShed(rid, req.Index, methodName, len(reads), arrive)
		return
	}
	defer co.pressure.Add(-1)

	done, ok := co.begin()
	if !ok {
		co.fail(w, rid, http.StatusServiceUnavailable, "coordinator is draining")
		co.recordShed(rid, req.Index, methodName, len(reads), arrive)
		return
	}
	defer done()

	timeout := co.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	// A traced batch carries the flag on the context so the client layer
	// sets X-Km-Trace on every worker RPC and the workers return their
	// span fragments.
	baseCtx := obs.WithRequestID(r.Context(), rid)
	var fb *obs.FragmentBuilder
	if traced {
		fb = obs.NewFragmentBuilder("coordinator", rid)
		baseCtx = obs.WithTraceRequest(baseCtx)
	}
	ctx, cancel := context.WithTimeout(baseCtx, timeout)
	defer cancel()

	select {
	case co.sem <- struct{}{}:
	case <-ctx.Done():
		co.fail(w, rid, http.StatusServiceUnavailable, "timed out waiting for a batch slot")
		co.recordShed(rid, req.Index, methodName, len(reads), arrive)
		return
	}
	defer func() { <-co.sem }()

	co.met.InFlight.Add(1)
	defer co.met.InFlight.Add(-1)
	start := time.Now()

	// Per-phase wall clocks for the flight recorder: the phases of one
	// batch are strictly sequential in this handler, so a single rolling
	// mark splits the elapsed time exactly.
	var phase [numCoordPhases]int64
	phaseMark := start
	lap := func(p int) {
		now := time.Now()
		phase[p] += int64(now.Sub(phaseMark))
		phaseMark = now
	}
	var cacheHits, coalesced int

	// Plan every read: sanitize the pattern (the key must match what
	// workers will actually search), then cache → singleflight. The
	// first occurrence of a key becomes the flight's leader; duplicates
	// in the same batch and concurrent batches become followers.
	plans := make([]readPlan, len(reads))
	var leaderReads []server.Read
	var leaderPlans []*readPlan
	var planO time.Duration
	if fb != nil {
		planO = fb.Now()
	}
	for i, rd := range reads {
		k := req.K
		if rd.K != nil {
			k = *rd.K
		}
		if k < 0 || k > co.cfg.MaxK {
			co.fail(w, rid, http.StatusBadRequest, "read %d: k=%d outside [0,%d]", i, k, co.cfg.MaxK)
			// Leaders already registered must complete or followers in
			// other batches would hang.
			co.abandonLeaders(leaderPlans, "batch rejected")
			return
		}
		clean, _ := bwtmatch.Sanitize([]byte(rd.Seq))
		key := cacheKey(req.Index, methodName, k, clean)
		p := &plans[i]
		p.id = rd.ID
		p.key = key
		if m, ok := co.cache.get(key); ok {
			co.met.CacheHits.Add(1)
			cacheHits++
			p.cached, p.hit = m, true
			continue
		}
		co.met.CacheMisses.Add(1)
		c, leader := co.flight.join(key)
		p.call, p.leader = c, leader
		if leader {
			p.lidx = len(leaderReads)
			kk := k
			leaderReads = append(leaderReads, server.Read{Seq: string(clean), K: &kk})
			leaderPlans = append(leaderPlans, p)
		} else {
			co.met.InflightDedup.Add(1)
			coalesced++
		}
	}
	lap(phasePlan)
	if fb != nil {
		fb.Span(1, "plan", planO, fb.Now(),
			obs.Arg{Key: "reads", Val: int64(len(reads))},
			obs.Arg{Key: "leaders", Val: int64(len(leaderReads))},
			obs.Arg{Key: "cache_hits", Val: int64(cacheHits)},
			obs.Arg{Key: "coalesced", Val: int64(coalesced)})
	}

	// The leaders' sub-batch fans out once for all of them.
	var failedShards []int
	var workerFrags []obs.Fragment
	partial := false
	if len(leaderReads) > 0 {
		var routeO time.Duration
		if fb != nil {
			routeO = fb.Now()
		}
		rt, err := co.resolve(ctx, req.Index)
		lap(phaseRoute)
		if err != nil {
			co.abandonLeaders(leaderPlans, err.Error())
			code := http.StatusBadGateway
			if errors.Is(err, ErrNoRoute) {
				code = http.StatusNotFound
			}
			co.fail(w, rid, code, "%v", err)
			return
		}
		var fanO time.Duration
		if fb != nil {
			fb.Span(1, "route", routeO, fb.Now())
			fanO = fb.Now()
		}
		outs := co.fanout(ctx, rt, leaderReads, req.K, methodName, req.TimeoutMS, fb)
		lap(phaseFanout)
		if fb != nil {
			fb.Span(1, "fanout", fanO, fb.Now(),
				obs.Arg{Key: "subsets", Val: int64(len(outs))},
				obs.Arg{Key: "reads", Val: int64(len(leaderReads))})
		}
		var mergeO time.Duration
		if fb != nil {
			mergeO = fb.Now()
		}
		results, failed, part := merge(len(leaderReads), outs)
		failedShards, partial = failed, part
		for _, o := range outs {
			workerFrags = append(workerFrags, o.frags...)
		}
		for _, p := range leaderPlans {
			rr := results[p.lidx]
			co.flight.complete(p.key, p.call, rr.Matches, rr.Error, part, failed)
			if !part && rr.Error == "" {
				co.cache.put(p.key, rr.Matches)
			}
		}
		lap(phaseMerge)
		if fb != nil {
			fb.Span(1, "merge", mergeO, fb.Now())
		}
	}

	// Assemble: cache hits and leaders are already settled; followers
	// wait for their flight's leader (possibly in another batch).
	var asmO time.Duration
	if fb != nil {
		asmO = fb.Now()
	}
	resp := server.SearchResponse{
		Index:  req.Index,
		Method: method.String(), // display name, like the worker tier

		Reads:   len(reads),
		Results: make([]server.ReadResult, len(reads)),
	}
	seenFailed := make(map[int]bool, len(failedShards))
	for _, s := range failedShards {
		seenFailed[s] = true
	}
	for i := range plans {
		p := &plans[i]
		rr := server.ReadResult{ID: p.id, Matches: []server.Match{}}
		switch {
		case p.hit:
			rr.Matches = p.cached
		case p.leader:
			rr.Matches, rr.Error = p.call.matches, p.call.errMsg
		default:
			select {
			case <-p.call.done:
				rr.Matches, rr.Error = p.call.matches, p.call.errMsg
				if p.call.partial {
					partial = true
					for _, s := range p.call.failed {
						if !seenFailed[s] {
							seenFailed[s] = true
							failedShards = append(failedShards, s)
						}
					}
				}
			case <-ctx.Done():
				rr.Error = fmt.Sprintf("waiting for coalesced result: %v", ctx.Err())
			}
		}
		if rr.Error != "" {
			rr.Matches = []server.Match{}
			resp.Errors++
		} else if rr.Matches == nil {
			rr.Matches = []server.Match{}
		}
		resp.Matches += len(rr.Matches)
		resp.Results[i] = rr
	}
	if partial {
		resp.Partial = true
		resp.FailedShards = sortedInts(failedShards)
		co.met.PartialTotal.Add(1)
	}
	lap(phaseAssemble)
	elapsed := time.Since(start)
	resp.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	resp.RequestID = rid
	if fb != nil {
		fb.Span(1, "assemble", asmO, fb.Now())
		// Coordinator fragment first, then one fragment per answering
		// worker: WriteChromeTraceMulti turns each into its own process
		// lane, so the stored slice is the whole cross-process timeline.
		frags := append([]obs.Fragment{fb.Fragment()}, workerFrags...)
		resp.Trace = frags
		co.lastTrace.Store(frags)
		co.met.TracesTotal.Add(1)
	}
	co.met.BatchesTotal.Add(1)
	co.met.ReadsTotal.Add(int64(len(reads)))
	co.met.MatchesTotal.Add(int64(resp.Matches))
	co.met.ErrorsTotal.Add(int64(resp.Errors))
	co.met.BatchLatency.Observe(elapsed)
	co.slo.Observe(elapsed, true)
	rec := obs.QueryRecord{
		Start:     arrive,
		RID:       rid,
		Index:     req.Index,
		Method:    methodName,
		ElapsedNS: int64(elapsed),
		Reads:     int32(len(reads)),
		Matches:   int32(resp.Matches),
		Errors:    int32(resp.Errors),
		CacheHits: int32(cacheHits),
		Coalesced: int32(coalesced),
		Partial:   resp.Partial,
	}
	copy(rec.PhaseNS[:], phase[:])
	for _, s := range resp.FailedShards {
		rec.FailedShards |= obs.ShardBit(s)
	}
	co.frec.Record(&rec)
	if resp.Partial {
		// Warn level with the rid: a partial batch is the cluster
		// degrading service, and the rid ties this line to the client
		// error and the flight-recorder record.
		co.log.Warn("partial batch",
			"rid", rid,
			"index", req.Index,
			"failed_shards", fmt.Sprint(resp.FailedShards))
	}
	co.log.Info("cluster search",
		"rid", rid,
		"index", req.Index,
		"method", methodName,
		"reads", len(reads),
		"fanned_out", len(leaderReads),
		"matches", resp.Matches,
		"errors", resp.Errors,
		"partial", resp.Partial,
		"elapsed_ms", resp.ElapsedMS)
	writeJSON(w, http.StatusOK, resp)
}

// recordShed leaves a flight-recorder record (and an SLO unavailability
// observation) behind for a batch refused by admission control, a
// drain, or a queue timeout — refusals are exactly what the recorder
// exists to explain after the fact.
func (co *Coordinator) recordShed(rid, index, method string, reads int, arrive time.Time) {
	elapsed := time.Since(arrive)
	rec := obs.QueryRecord{
		Start:     arrive,
		RID:       rid,
		Index:     index,
		Method:    method,
		ElapsedNS: int64(elapsed),
		Reads:     int32(reads),
		Shed:      true,
	}
	co.frec.Record(&rec)
	co.slo.Observe(elapsed, false)
}

// sampleTrace decides whether an untagged batch gets traced anyway,
// at the configured TraceSample rate.
func (co *Coordinator) sampleTrace() bool {
	s := co.cfg.TraceSample
	return s > 0 && (s >= 1 || rand.Float64() < s)
}

// handleDebugTrace serves the most recent sampled batch's assembled
// cross-process timeline in Chrome trace-event format (load it in
// chrome://tracing or Perfetto). 404 until a batch has been sampled.
func (co *Coordinator) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	frags, _ := co.lastTrace.Load().([]obs.Fragment)
	if len(frags) == 0 {
		writeJSON(w, http.StatusNotFound,
			server.ErrorResponse{Error: "no sampled trace captured yet"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTraceMulti(w, frags)
}

// abandonLeaders completes every registered leader call with an error
// so cross-batch followers waiting on them wake instead of hanging.
func (co *Coordinator) abandonLeaders(leaders []*readPlan, msg string) {
	for _, p := range leaders {
		co.flight.complete(p.key, p.call, nil, msg, false, nil)
	}
}

func sortedInts(s []int) []int {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}
