package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"bwtmatch/internal/obs"
	"bwtmatch/server"
)

// postJSON posts body with optional headers and returns the response
// plus its full body.
func postJSON(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func TestCoordinatorRequestIDEchoed(t *testing.T) {
	f := newFixture(t, 2, nil)

	// No header: minted and echoed in header + body.
	resp, body := postJSON(t, f.base+"/v1/search", `{"index":"g","seq":"acgt","k":1}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	hdr := resp.Header.Get(server.HeaderRequestID)
	if hdr == "" {
		t.Fatalf("no %s header on success", server.HeaderRequestID)
	}
	var sr server.SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.RequestID != hdr {
		t.Errorf("body request_id %q != header %q", sr.RequestID, hdr)
	}

	// Caller-supplied rid: adopted verbatim, echoed on errors too.
	resp, body = postJSON(t, f.base+"/v1/search", `{"index":"nope","seq":"acgt"}`,
		map[string]string{server.HeaderRequestID: "edge-rid-1"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get(server.HeaderRequestID) != "edge-rid-1" || e.RequestID != "edge-rid-1" {
		t.Errorf("error rid: header %q body %q, want edge-rid-1",
			resp.Header.Get(server.HeaderRequestID), e.RequestID)
	}
}

func TestCoordinatorRequestIDEchoedOnShed(t *testing.T) {
	f := newFixture(t, 1, nil)

	// Draining: batches are refused but the refusal still carries the rid
	// and leaves a shed record in the flight recorder.
	f.co.mu.Lock()
	f.co.draining = true
	f.co.mu.Unlock()
	resp, body := postJSON(t, f.base+"/v1/search", `{"index":"g","seq":"acgt"}`,
		map[string]string{server.HeaderRequestID: "shed-rid-5"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != "shed-rid-5" || resp.Header.Get(server.HeaderRequestID) != "shed-rid-5" {
		t.Errorf("shed rid: header %q body %+v", resp.Header.Get(server.HeaderRequestID), e)
	}
	if f.co.frec.Total() != 1 {
		t.Fatalf("flight total = %d, want the shed record", f.co.frec.Total())
	}
	blob, err := json.Marshal(f.co.frec.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"shed":true`) ||
		!strings.Contains(string(blob), `"rid":"shed-rid-5"`) {
		t.Errorf("shed record missing from snapshot: %s", blob)
	}
}

// TestCoordinatorTraceAssembly is the tentpole property: one traced
// batch produces a single cross-process timeline — the coordinator's
// fragment (plan/route/fanout/subset/rpc/merge/assemble spans) followed
// by one fragment per answering worker, every fragment carrying the
// same request ID and the worker ones relabelled with the worker URL.
func TestCoordinatorTraceAssembly(t *testing.T) {
	f := newFixture(t, 2, nil)

	ctx := obs.WithTraceRequest(obs.WithRequestID(context.Background(), "trace-rid-1"))
	resp, err := f.cl.Search(ctx, server.SearchRequest{Index: "g", Seq: "acgtacgt", K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RequestID != "trace-rid-1" {
		t.Errorf("request_id = %q", resp.RequestID)
	}
	if len(resp.Trace) < 2 {
		t.Fatalf("%d fragments, want coordinator + at least one worker", len(resp.Trace))
	}
	coFrag := resp.Trace[0]
	if coFrag.Process != "coordinator" || coFrag.RequestID != "trace-rid-1" {
		t.Fatalf("first fragment = %q/%q, want coordinator/trace-rid-1",
			coFrag.Process, coFrag.RequestID)
	}
	names := map[string]bool{}
	for _, sp := range coFrag.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"plan", "route", "fanout", "subset", "rpc", "merge", "assemble"} {
		if !names[want] {
			t.Errorf("coordinator fragment missing span %q (have %v)", want, names)
		}
	}
	workerURLs := map[string]bool{}
	for _, wf := range resp.Trace[1:] {
		if wf.RequestID != "trace-rid-1" {
			t.Errorf("worker fragment rid = %q", wf.RequestID)
		}
		if !strings.HasPrefix(wf.Process, "http://") {
			t.Errorf("worker fragment process %q not relabelled to its URL", wf.Process)
		}
		workerURLs[wf.Process] = true
		ok := false
		for _, sp := range wf.Spans {
			if sp.Name == "search" {
				ok = true
			}
		}
		if !ok {
			t.Errorf("worker fragment %q has no search span", wf.Process)
		}
	}
	// Two workers each own a shard subset of the 5-shard index, so both
	// must appear as distinct process lanes.
	if len(workerURLs) != 2 {
		t.Errorf("worker lanes = %v, want both workers", workerURLs)
	}
	// The assembled slice renders to one valid multi-process Chrome trace.
	var sb strings.Builder
	if err := obs.WriteChromeTraceMulti(&sb, resp.Trace); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(strings.NewReader(sb.String())); err != nil {
		t.Errorf("assembled timeline invalid: %v", err)
	}

	// An untraced batch returns no fragments.
	resp, err = f.cl.Search(context.Background(), server.SearchRequest{Index: "g", Seq: "acgt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) != 0 {
		t.Errorf("untraced batch returned %d fragments", len(resp.Trace))
	}
}

func TestCoordinatorDebugTrace(t *testing.T) {
	f := newFixture(t, 2, func(c *Config) { c.TraceSample = 1 })

	// Before any batch: 404.
	resp, err := http.Get(f.base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace before any batch: status %d", resp.StatusCode)
	}

	// TraceSample=1: an ordinary batch (no X-Km-Trace header) is sampled
	// and its timeline becomes available on /debug/trace.
	if _, err := f.cl.Search(context.Background(), server.SearchRequest{Index: "g", Seq: "acgtacgt", K: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(f.base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(strings.NewReader(string(blob))); err != nil {
		t.Fatalf("/debug/trace document invalid: %v\n%s", err, blob)
	}
	// The timeline must span processes: coordinator + both workers.
	var doc struct {
		Events []struct {
			Phase string         `json:"ph"`
			Name  string         `json:"name"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	for _, ev := range doc.Events {
		if ev.Phase == "M" && ev.Name == "process_name" {
			if name, ok := ev.Args["name"].(string); ok {
				procs[name] = true
			}
		}
	}
	if len(procs) != 3 || !procs["coordinator"] {
		t.Errorf("process lanes = %v, want coordinator + 2 workers", procs)
	}
	if got := f.co.met.TracesTotal.Load(); got != 1 {
		t.Errorf("km_cluster_traces_total = %d, want 1", got)
	}
}

func TestCoordinatorFlightRecorderEndpoint(t *testing.T) {
	f := newFixture(t, 1, nil)

	if _, err := f.cl.Search(context.Background(), server.SearchRequest{Index: "g", Seq: "acgtacgt", K: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(f.base + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight recorder status %d", resp.StatusCode)
	}
	var doc struct {
		Total  uint64   `json:"total"`
		Phases []string `json:"phases"`
		Recent []struct {
			RID      string             `json:"rid"`
			Index    string             `json:"index"`
			PhasesMS map[string]float64 `json:"phases_ms"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 1 || len(doc.Recent) != 1 {
		t.Fatalf("snapshot shape = %+v", doc)
	}
	if want := []string{"plan", "route", "fanout", "merge", "assemble"}; len(doc.Phases) != len(want) {
		t.Errorf("phases = %v, want %v", doc.Phases, want)
	}
	r0 := doc.Recent[0]
	if r0.Index != "g" || r0.RID == "" {
		t.Errorf("recent[0] = %+v", r0)
	}
	if _, ok := r0.PhasesMS["fanout"]; !ok {
		t.Errorf("no fanout phase in %v", r0.PhasesMS)
	}
}

func TestCoordinatorMetricsIncludeSLO(t *testing.T) {
	f := newFixture(t, 1, nil)

	if _, err := f.cl.Search(context.Background(), server.SearchRequest{Index: "g", Seq: "acgt", K: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(f.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(blob)
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("coordinator exposition invalid: %v", err)
	}
	for _, want := range []string{
		"km_cluster_traces_total",
		"km_slo_latency_objective_ms",
		"km_slo_availability_total 1",
		`km_slo_burn_rate{slo="availability",window="1h"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in coordinator /metrics", want)
		}
	}
}
