package cluster_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"bwtmatch/internal/obs"
)

// TestTraceSmoke is the `make trace-smoke` gate: the real fleet
// (kmgen index, two kmserved workers, a kmserved -coordinator at 100%
// trace sampling) driven by kmload -trace, which must produce one
// cross-process Chrome timeline — the coordinator's spans plus span
// fragments from both workers, all carrying the same request ID. The
// coordinator's /debug/trace and both tiers' /debug/flightrecorder
// endpoints are probed over the same fleet.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := t.TempDir()
	for _, name := range []string{"kmgen", "kmserved", "kmload"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bins, name), "bwtmatch/cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	work := t.TempDir()
	genome := filepath.Join(work, "genome.fa")
	index := filepath.Join(work, "genome.bwt")
	report := filepath.Join(work, "report.json")
	traceFile := filepath.Join(work, "trace.json")

	if out, err := exec.Command(filepath.Join(bins, "kmgen"),
		"-genome", genome, "-bases", "16384", "-seed", "11",
		"-index", index, "-shards", "4", "-max-pattern", "96").CombinedOutput(); err != nil {
		t.Fatalf("kmgen: %v\n%s", err, out)
	}

	worker1 := startDaemon(t, filepath.Join(bins, "kmserved"),
		"-addr", "127.0.0.1:0", "-load", "g="+index, "-warm")
	worker2 := startDaemon(t, filepath.Join(bins, "kmserved"),
		"-addr", "127.0.0.1:0", "-load", "g="+index, "-warm")
	awaitOK(t, worker1+"/readyz")
	awaitOK(t, worker2+"/readyz")

	coord := startDaemon(t, filepath.Join(bins, "kmserved"),
		"-coordinator", "-addr", "127.0.0.1:0", "-trace-sample", "1",
		"-workers", worker1+","+worker2)
	awaitOK(t, coord+"/readyz")

	if out, err := exec.Command(filepath.Join(bins, "kmload"),
		"-url", coord, "-index", "g", "-k", "2", "-clients", "4",
		"-requests", "12", "-batch", "8", "-pool", "32", "-pattern-len", "40",
		"-genome", genome, "-seed", "5", "-out", report,
		"-trace", traceFile).CombinedOutput(); err != nil {
		t.Fatalf("kmload: %v\n%s", err, out)
	}

	// The kmload-written timeline must be a valid Chrome trace whose
	// instant/span events all share kmload's forced request ID, spread
	// over a coordinator lane and at least one worker lane.
	blob, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(strings.NewReader(string(blob))); err != nil {
		t.Fatalf("kmload trace invalid: %v\n%s", err, blob)
	}
	var doc struct {
		Events []struct {
			Phase string         `json:"ph"`
			Name  string         `json:"name"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	spans := map[string]bool{}
	for _, ev := range doc.Events {
		switch {
		case ev.Phase == "M" && ev.Name == "process_name":
			if name, ok := ev.Args["name"].(string); ok {
				procs[name] = true
			}
		case ev.Phase == "X":
			spans[ev.Name] = true
		}
	}
	if !procs["coordinator"] {
		t.Errorf("no coordinator lane in %v", procs)
	}
	workers := 0
	for p := range procs {
		if strings.HasPrefix(p, "http://") {
			workers++
		}
	}
	if workers < 1 {
		t.Errorf("no worker lanes in %v", procs)
	}
	for _, want := range []string{"plan", "fanout", "subset", "rpc", "search"} {
		if !spans[want] {
			t.Errorf("timeline missing %q span (have %v)", want, spans)
		}
	}

	// 100% sampling: /debug/trace serves a valid timeline too.
	dbg := getBody(t, coord+"/debug/trace")
	if err := obs.ValidateChromeTrace(strings.NewReader(dbg)); err != nil {
		t.Errorf("/debug/trace invalid: %v", err)
	}

	// Flight recorders are live on every tier; the coordinator's breaks
	// batches into its five phases, the workers into queue/search.
	for tier, base := range map[string]string{"coordinator": coord, "worker": worker1} {
		body := getBody(t, base+"/debug/flightrecorder")
		var snap struct {
			Total  uint64   `json:"total"`
			Phases []string `json:"phases"`
		}
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("%s flight recorder: %v", tier, err)
		}
		if snap.Total == 0 {
			t.Errorf("%s flight recorder saw no batches", tier)
		}
		wantPhases := "queue,search"
		if tier == "coordinator" {
			wantPhases = "plan,route,fanout,merge,assemble"
		}
		if got := strings.Join(snap.Phases, ","); got != wantPhases {
			t.Errorf("%s phases = %s, want %s", tier, got, wantPhases)
		}
	}
}
