package cluster_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bwtmatch/internal/obs"
)

// TestClusterSmoke boots the real fleet through the real binaries —
// kmgen builds a sharded index, two kmserved workers load it with
// -warm, a kmserved -coordinator fronts them, and kmload drives
// duplicate-heavy traffic through the coordinator — then checks the
// load report and scrapes /metrics on all three processes.
// `make cluster-smoke` runs exactly this.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := t.TempDir()
	for _, name := range []string{"kmgen", "kmserved", "kmload"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bins, name), "bwtmatch/cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	work := t.TempDir()
	genome := filepath.Join(work, "genome.fa")
	index := filepath.Join(work, "genome.bwt")
	report := filepath.Join(work, "report.json")

	if out, err := exec.Command(filepath.Join(bins, "kmgen"),
		"-genome", genome, "-bases", "16384", "-seed", "7",
		"-index", index, "-shards", "4", "-max-pattern", "96").CombinedOutput(); err != nil {
		t.Fatalf("kmgen: %v\n%s", err, out)
	}

	worker1 := startDaemon(t, filepath.Join(bins, "kmserved"),
		"-addr", "127.0.0.1:0", "-load", "g="+index, "-warm")
	worker2 := startDaemon(t, filepath.Join(bins, "kmserved"),
		"-addr", "127.0.0.1:0", "-load", "g="+index, "-warm")
	awaitOK(t, worker1+"/readyz")
	awaitOK(t, worker2+"/readyz")

	coord := startDaemon(t, filepath.Join(bins, "kmserved"),
		"-coordinator", "-addr", "127.0.0.1:0",
		"-workers", worker1+","+worker2)
	awaitOK(t, coord+"/readyz")

	if out, err := exec.Command(filepath.Join(bins, "kmload"),
		"-url", coord, "-index", "g", "-k", "2", "-clients", "8",
		"-requests", "40", "-batch", "8", "-pool", "32", "-pattern-len", "40",
		"-genome", genome, "-seed", "3", "-out", report).CombinedOutput(); err != nil {
		t.Fatalf("kmload: %v\n%s", err, out)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		BatchesOK     int64          `json:"batches_ok"`
		Reads         int64          `json:"reads"`
		RequestErrors int64          `json:"request_errors"`
		ServerMetrics map[string]any `json:"server_metrics"`
		Latency       struct {
			P50 float64 `json:"p50"`
			P99 float64 `json:"p99"`
		} `json:"latency_ms"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report: %v\n%s", err, data)
	}
	if rep.BatchesOK != 40 || rep.RequestErrors != 0 {
		t.Fatalf("load run: %d ok, %d errors\n%s", rep.BatchesOK, rep.RequestErrors, data)
	}
	if rep.Reads != 40*8 {
		t.Errorf("reads %d, want %d", rep.Reads, 40*8)
	}
	if rep.Latency.P99 < rep.Latency.P50 || rep.Latency.P50 <= 0 {
		t.Errorf("implausible latency quantiles p50=%v p99=%v", rep.Latency.P50, rep.Latency.P99)
	}
	// The Zipf pool guarantees duplicates: coalescing and/or the cache
	// must have absorbed part of the fan-out.
	hot := num(rep.ServerMetrics["cache_hits_total"]) + num(rep.ServerMetrics["cache_inflight_dedup_total"])
	if hot == 0 {
		t.Errorf("no cache hits or coalesced reads under Zipf traffic\n%s", data)
	}

	for name, probe := range map[string]struct{ base, series string }{
		"worker1":     {worker1, "kmserved_batches_total"},
		"worker2":     {worker2, "kmserved_batches_total"},
		"coordinator": {coord, "km_cluster_batches_total"},
	} {
		body := getBody(t, probe.base+"/metrics")
		if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
			t.Errorf("%s exposition invalid: %v", name, err)
		}
		if !strings.Contains(body, probe.series) {
			t.Errorf("%s missing %s in /metrics", name, probe.series)
		}
	}
}

// startDaemon launches a kmserved process and returns its base URL.
func startDaemon(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	sc := bufio.NewScanner(stdout)
	urlc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if _, url, ok := strings.Cut(sc.Text(), "listening on "); ok {
				urlc <- url
				return
			}
		}
	}()
	select {
	case url := <-urlc:
		return url
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not announce its address")
		return ""
	}
}

func awaitOK(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never returned 200 (last: %v)", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, buf.String())
	}
	return buf.String()
}

// num coerces a JSON-decoded numeric field.
func num(v any) float64 {
	f, _ := v.(float64)
	return f
}
