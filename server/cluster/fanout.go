package cluster

import (
	"context"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"time"

	"bwtmatch/internal/obs"
	"bwtmatch/server"
	"bwtmatch/server/client"
)

// subsetResult is the outcome of one subset's fan-out: the worker
// responses for every read (index-aligned with the batch), or failure
// after the retry chain is exhausted. On a traced batch frags carries
// the span fragments the answering worker returned, relabelled with
// the worker's URL so each worker gets its own process lane in the
// assembled timeline.
type subsetResult struct {
	sub     subset
	results []server.ReadResult // nil on failure
	frags   []obs.Fragment
	err     error
}

// fanout sends the batch to every subset of the route concurrently and
// collects the per-subset outcomes. Reads are the already-validated
// wire reads (patterns sanitized); k and method are the batch-level
// values. fb is non-nil on a traced batch: each subset records its
// spans on its own lane (tid i+2; tid 1 is the coordinator's main
// flow). The caller merges.
func (co *Coordinator) fanout(ctx context.Context, r route, reads []server.Read, k int, method string, timeoutMS int, fb *obs.FragmentBuilder) []subsetResult {
	subs := r.subsets()
	out := make([]subsetResult, len(subs))
	var wg sync.WaitGroup
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub subset) {
			defer wg.Done()
			tid := i + 2
			var s0 time.Duration
			if fb != nil {
				s0 = fb.Now()
			}
			results, frags, err := co.searchSubset(ctx, r.index, sub, reads, k, method, timeoutMS, fb, tid)
			if fb != nil {
				ok := int64(1)
				if err != nil {
					ok = 0
				}
				fb.Span(tid, "subset", s0, fb.Now(),
					obs.Arg{Key: "shards", Val: int64(len(sub.shards))},
					obs.Arg{Key: "ok", Val: ok})
			}
			out[i] = subsetResult{sub: sub, results: results, frags: frags, err: err}
		}(i, sub)
	}
	wg.Wait()
	return out
}

// searchSubset runs one subset's request against its replica chain:
// attempt j goes to chain[j mod len(chain)], bounded by WorkerTimeout,
// with exponential backoff + jitter between attempts. Client errors
// (4xx) abort immediately except 404, which marks the route stale —
// the cached route is dropped so the next batch re-resolves — and
// still fails over, since a replica may hold the index the primary
// evicted.
func (co *Coordinator) searchSubset(ctx context.Context, index string, sub subset, reads []server.Read, k int, method string, timeoutMS int, fb *obs.FragmentBuilder, tid int) ([]server.ReadResult, []obs.Fragment, error) {
	req := server.SearchRequest{
		Index:     index,
		K:         k,
		Method:    method,
		Reads:     reads,
		Shards:    sub.shards,
		TimeoutMS: timeoutMS,
	}
	attempts := co.cfg.SubsetRetries + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			co.met.RetriesTotal.Add(1)
			if fb != nil {
				fb.Mark(tid, "retry", obs.Arg{Key: "attempt", Val: int64(attempt)})
			}
			d := co.cfg.RetryBackoff << (attempt - 1)
			select {
			case <-time.After(d + rand.N(d/2+1)):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		wk := sub.chain[attempt%len(sub.chain)]
		co.met.FanoutRPCs.Add(1)
		var r0 time.Duration
		if fb != nil {
			r0 = fb.Now()
		}
		resp, elapsed, err := co.searchWorker(ctx, wk, req)
		if fb != nil {
			fb.Span(tid, "rpc", r0, fb.Now(),
				obs.Arg{Key: "attempt", Val: int64(attempt)},
				obs.Arg{Key: "code", Val: int64(client.StatusCode(err))})
		}
		if err == nil {
			co.met.WorkerLatency.Observe(elapsed)
			// The worker only returns fragments when this batch carried
			// X-Km-Trace (which the client sets from the traced context).
			// Relabel them with the worker's URL: every worker reports
			// itself as "kmserved", and the timeline needs one process
			// lane per fleet member.
			frags := resp.Trace
			for i := range frags {
				frags[i].Process = wk.url
			}
			return resp.Results, frags, nil
		}
		lastErr = err
		co.met.WorkerErrors.Add(1)
		code := client.StatusCode(err)
		co.log.Warn("worker attempt failed",
			"index", index, "worker", wk.url, "shards", sub.shards,
			"attempt", attempt, "code", code, "error", err)
		if code == http.StatusNotFound {
			co.routes.drop(index)
		} else if code >= 400 && code < 500 {
			// The request itself is bad (or too large): every replica
			// would reject it the same way.
			return nil, nil, err
		}
		if ctx.Err() != nil {
			return nil, nil, lastErr
		}
	}
	return nil, nil, lastErr
}

// searchWorker performs one bounded RPC attempt.
func (co *Coordinator) searchWorker(ctx context.Context, wk *worker, req server.SearchRequest) (*server.SearchResponse, time.Duration, error) {
	actx, cancel := context.WithTimeout(ctx, co.cfg.WorkerTimeout)
	defer cancel()
	start := time.Now()
	resp, err := wk.c.Search(actx, req)
	return resp, time.Since(start), err
}

// merge assembles the final per-read results from the subset outcomes:
// for each read, the matches from every successful subset gathered and
// sorted by position (subsets own disjoint position ranges, so the sort
// just interleaves already-sorted runs; no de-duplication is needed).
// Failed subsets make the batch partial and their shards are reported.
// A per-read worker error (bad pattern) is identical across subsets;
// the first one seen wins.
func merge(n int, outs []subsetResult) (results []server.ReadResult, failed []int, partial bool) {
	results = make([]server.ReadResult, n)
	for _, o := range outs {
		if o.err != nil {
			partial = true
			failed = append(failed, o.sub.shards...)
			continue
		}
		for i := range results {
			if i >= len(o.results) {
				break
			}
			rr := o.results[i]
			if rr.Error != "" {
				if results[i].Error == "" {
					results[i].Error = rr.Error
				}
				continue
			}
			results[i].Matches = append(results[i].Matches, rr.Matches...)
		}
	}
	for i := range results {
		if results[i].Error != "" {
			results[i].Matches = nil
			continue
		}
		m := results[i].Matches
		sort.Slice(m, func(a, b int) bool { return m[a].Pos < m[b].Pos })
		if m == nil {
			results[i].Matches = []server.Match{}
		}
	}
	sort.Ints(failed)
	return results, failed, partial
}
