package cluster

import (
	"context"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"time"

	"bwtmatch/server"
	"bwtmatch/server/client"
)

// subsetResult is the outcome of one subset's fan-out: the worker
// responses for every read (index-aligned with the batch), or failure
// after the retry chain is exhausted.
type subsetResult struct {
	sub     subset
	results []server.ReadResult // nil on failure
	err     error
}

// fanout sends the batch to every subset of the route concurrently and
// collects the per-subset outcomes. Reads are the already-validated
// wire reads (patterns sanitized); k and method are the batch-level
// values. The caller merges.
func (co *Coordinator) fanout(ctx context.Context, r route, reads []server.Read, k int, method string, timeoutMS int) []subsetResult {
	subs := r.subsets()
	out := make([]subsetResult, len(subs))
	var wg sync.WaitGroup
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub subset) {
			defer wg.Done()
			results, err := co.searchSubset(ctx, r.index, sub, reads, k, method, timeoutMS)
			out[i] = subsetResult{sub: sub, results: results, err: err}
		}(i, sub)
	}
	wg.Wait()
	return out
}

// searchSubset runs one subset's request against its replica chain:
// attempt j goes to chain[j mod len(chain)], bounded by WorkerTimeout,
// with exponential backoff + jitter between attempts. Client errors
// (4xx) abort immediately except 404, which marks the route stale —
// the cached route is dropped so the next batch re-resolves — and
// still fails over, since a replica may hold the index the primary
// evicted.
func (co *Coordinator) searchSubset(ctx context.Context, index string, sub subset, reads []server.Read, k int, method string, timeoutMS int) ([]server.ReadResult, error) {
	req := server.SearchRequest{
		Index:     index,
		K:         k,
		Method:    method,
		Reads:     reads,
		Shards:    sub.shards,
		TimeoutMS: timeoutMS,
	}
	attempts := co.cfg.SubsetRetries + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			co.met.RetriesTotal.Add(1)
			d := co.cfg.RetryBackoff << (attempt - 1)
			select {
			case <-time.After(d + rand.N(d/2+1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		wk := sub.chain[attempt%len(sub.chain)]
		co.met.FanoutRPCs.Add(1)
		resp, elapsed, err := co.searchWorker(ctx, wk, req)
		if err == nil {
			co.met.WorkerLatency.Observe(elapsed)
			return resp.Results, nil
		}
		lastErr = err
		co.met.WorkerErrors.Add(1)
		code := client.StatusCode(err)
		co.log.Warn("worker attempt failed",
			"index", index, "worker", wk.url, "shards", sub.shards,
			"attempt", attempt, "code", code, "error", err)
		if code == http.StatusNotFound {
			co.routes.drop(index)
		} else if code >= 400 && code < 500 {
			// The request itself is bad (or too large): every replica
			// would reject it the same way.
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// searchWorker performs one bounded RPC attempt.
func (co *Coordinator) searchWorker(ctx context.Context, wk *worker, req server.SearchRequest) (*server.SearchResponse, time.Duration, error) {
	actx, cancel := context.WithTimeout(ctx, co.cfg.WorkerTimeout)
	defer cancel()
	start := time.Now()
	resp, err := wk.c.Search(actx, req)
	return resp, time.Since(start), err
}

// merge assembles the final per-read results from the subset outcomes:
// for each read, the matches from every successful subset gathered and
// sorted by position (subsets own disjoint position ranges, so the sort
// just interleaves already-sorted runs; no de-duplication is needed).
// Failed subsets make the batch partial and their shards are reported.
// A per-read worker error (bad pattern) is identical across subsets;
// the first one seen wins.
func merge(n int, outs []subsetResult) (results []server.ReadResult, failed []int, partial bool) {
	results = make([]server.ReadResult, n)
	for _, o := range outs {
		if o.err != nil {
			partial = true
			failed = append(failed, o.sub.shards...)
			continue
		}
		for i := range results {
			if i >= len(o.results) {
				break
			}
			rr := o.results[i]
			if rr.Error != "" {
				if results[i].Error == "" {
					results[i].Error = rr.Error
				}
				continue
			}
			results[i].Matches = append(results[i].Matches, rr.Matches...)
		}
	}
	for i := range results {
		if results[i].Error != "" {
			results[i].Matches = nil
			continue
		}
		m := results[i].Matches
		sort.Slice(m, func(a, b int) bool { return m[a].Pos < m[b].Pos })
		if m == nil {
			results[i].Matches = []server.Match{}
		}
	}
	sort.Ints(failed)
	return results, failed, partial
}
