package cluster

import (
	"fmt"
	"testing"

	"bwtmatch/server"
)

func TestCacheKeyDistinguishesComponents(t *testing.T) {
	base := cacheKey("g", "a", 2, []byte("acgt"))
	for name, other := range map[string]string{
		"index":   cacheKey("h", "a", 2, []byte("acgt")),
		"method":  cacheKey("g", "bwt", 2, []byte("acgt")),
		"k":       cacheKey("g", "a", 3, []byte("acgt")),
		"pattern": cacheKey("g", "a", 2, []byte("acga")),
	} {
		if other == base {
			t.Errorf("key ignores %s", name)
		}
	}
	if cacheKey("g", "a", 2, []byte("acgt")) != base {
		t.Error("key not deterministic")
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(3, 0)
	m := []server.Match{{Pos: 1, Mismatches: 0}}
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), m)
	}
	// Touch k0 so k1 is the eviction victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", m)
	if _, ok := c.get("k1"); ok {
		t.Error("k1 not evicted (LRU order broken)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s missing", k)
		}
	}
	if n, _ := c.stats(); n != 3 {
		t.Errorf("entries %d, want 3", n)
	}
}

func TestResultCacheByteBudget(t *testing.T) {
	one := entryBytes("k0", nil)
	c := newResultCache(0, 2*one)
	c.put("k0", nil)
	c.put("k1", nil)
	c.put("k2", nil) // over budget: k0 evicted
	if _, ok := c.get("k0"); ok {
		t.Error("k0 survived byte-budget eviction")
	}
	if _, bytes := c.stats(); bytes > 2*one {
		t.Errorf("resident %d bytes over budget %d", bytes, 2*one)
	}

	// An entry bigger than the whole budget is refused outright.
	huge := make([]server.Match, 1024)
	c.put("huge", huge)
	if _, ok := c.get("huge"); ok {
		t.Error("oversized entry cached")
	}

	// Updating a key in place adjusts the byte account.
	c.put("k1", []server.Match{{Pos: 9}})
	if m, ok := c.get("k1"); !ok || len(m) != 1 || m[0].Pos != 9 {
		t.Errorf("k1 after update: %v %v", m, ok)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *resultCache
	c.put("k", nil)
	if _, ok := c.get("k"); ok {
		t.Error("nil cache hit")
	}
	if n, b := c.stats(); n != 0 || b != 0 {
		t.Error("nil cache reports occupancy")
	}
}
