package cluster

import (
	"container/list"
	"strconv"
	"sync"

	"bwtmatch/server"
)

// cacheKey builds the coalescing/cache key for one logical query. The
// pattern is sanitized before keying so requests differing only in
// case or ambiguity codes coalesce. NUL separators cannot collide with
// the components: index names and method names never contain NUL and
// the sanitized pattern is pure acgt.
func cacheKey(index, method string, k int, pattern []byte) string {
	return index + "\x00" + method + "\x00" + strconv.Itoa(k) + "\x00" + string(pattern)
}

// cacheEntry is one cached result list.
type cacheEntry struct {
	key     string
	matches []server.Match
	bytes   int64
}

// entryBytes estimates an entry's resident cost: key bytes, match
// slots (Pos+Mismatches, two words each), and fixed bookkeeping
// overhead (list element, map slot, headers).
func entryBytes(key string, matches []server.Match) int64 {
	return int64(len(key)) + int64(len(matches))*16 + 96
}

// resultCache is the hot-results LRU: completed full (non-partial,
// non-error) query results keyed like the flight group, bounded by
// both entry count and bytes. Hits serve straight from the
// coordinator with no worker RPC at all — on duplicate-heavy read
// traffic this is the difference between fleet fan-out and a map
// lookup. All methods are safe for concurrent use; a nil cache (<0
// budget) never hits.
type resultCache struct {
	mu       sync.Mutex
	maxEnt   int
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

// newResultCache builds a cache bounded by maxEntries entries and
// maxBytes bytes (either <= 0 leaves that bound off; both <= 0 is
// expressed by the caller passing a nil cache instead).
func newResultCache(maxEntries int, maxBytes int64) *resultCache {
	return &resultCache{
		maxEnt:   maxEntries,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached matches for key, refreshing recency. The
// returned slice is shared and must not be mutated.
func (c *resultCache) get(key string) ([]server.Match, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).matches, true
}

// put inserts or refreshes key, evicting LRU entries over budget. An
// entry larger than the whole byte budget is not cached.
func (c *resultCache) put(key string, matches []server.Match) {
	if c == nil {
		return
	}
	cost := entryBytes(key, matches)
	if c.maxBytes > 0 && cost > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += cost - e.bytes
		e.matches, e.bytes = matches, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, matches: matches, bytes: cost})
		c.bytes += cost
	}
	for (c.maxEnt > 0 && c.ll.Len() > c.maxEnt) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.bytes
	}
}

// stats snapshots the entry count and resident bytes (the
// km_cache_entries / km_cache_bytes gauges).
func (c *resultCache) stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}
