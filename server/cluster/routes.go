package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
)

// ErrRoutes reports an unusable route table (bad file, worker URL not
// in the coordinator's worker set, shard-count disagreement).
var ErrRoutes = errors.New("cluster: bad route table")

// ErrNoRoute reports that no worker serves the requested index.
var ErrNoRoute = errors.New("cluster: no worker serves index")

// RouteTable is the static shard→worker routing configuration: which
// workers own each index and how many shards the index has. It can be
// loaded from a file (LoadRoutesFile, kmserved -routes) or discovered
// at runtime from the workers' /v1/indexes listings.
type RouteTable struct {
	// Indexes maps index name to its route.
	Indexes map[string]RouteEntry `json:"indexes"`
}

// RouteEntry routes one index.
type RouteEntry struct {
	// Shards is the index's shard count (0 for a monolithic index).
	Shards int `json:"shards"`
	// Workers lists the base URLs of the workers serving this index, in
	// replica-priority order. Every URL must appear in the
	// coordinator's configured worker set.
	Workers []string `json:"workers"`
}

// LoadRoutesFile reads a static route table:
//
//	{"indexes": {"hg": {"shards": 8, "workers": ["http://a:8080", "http://b:8080"]}}}
//
// Errors wrap ErrRoutes so callers can distinguish configuration
// problems from transport failures.
func LoadRoutesFile(path string) (*RouteTable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRoutes, err)
	}
	var rt RouteTable
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rt); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrRoutes, path, err)
	}
	if err := rt.validate(); err != nil {
		return nil, err
	}
	return &rt, nil
}

func (rt *RouteTable) validate() error {
	if len(rt.Indexes) == 0 {
		return fmt.Errorf("%w: no indexes", ErrRoutes)
	}
	for name, e := range rt.Indexes {
		if name == "" {
			return fmt.Errorf("%w: empty index name", ErrRoutes)
		}
		if e.Shards < 0 {
			return fmt.Errorf("%w: index %q: negative shard count %d", ErrRoutes, name, e.Shards)
		}
		if len(e.Workers) == 0 {
			return fmt.Errorf("%w: index %q: no workers", ErrRoutes, name)
		}
		seen := make(map[string]bool, len(e.Workers))
		for _, u := range e.Workers {
			if u == "" || seen[u] {
				return fmt.Errorf("%w: index %q: empty or duplicate worker %q", ErrRoutes, name, u)
			}
			seen[u] = true
		}
	}
	return nil
}

// route is one index's resolved routing: the owning workers as client
// handles, in replica-priority order.
type route struct {
	index  string
	shards int // 0 = monolithic
	owners []*worker
}

// subset is the unit of fan-out and of retry: the shards one worker is
// primary for, with the replica chain shared by all of them. For shard
// s with n owners the chain is owners[(s+j) mod n], so every shard in
// {s : s mod n == p} rotates through the same workers in the same
// order, and the whole subset can fail over as one request.
type subset struct {
	shards []int // strictly increasing; nil for monolithic
	chain  []*worker
}

// subsets partitions the route's shards by primary owner. A monolithic
// index yields a single nil-shard subset whose chain is rotated by a
// hash of the index name, spreading different indexes' primary load
// across the fleet.
func (r route) subsets() []subset {
	n := len(r.owners)
	if r.shards == 0 {
		h := fnv.New32a()
		h.Write([]byte(r.index))
		rot := int(h.Sum32()) % n
		if rot < 0 {
			rot += n
		}
		return []subset{{shards: nil, chain: rotateWorkers(r.owners, rot)}}
	}
	count := n
	if r.shards < count {
		count = r.shards
	}
	out := make([]subset, 0, count)
	for p := 0; p < count; p++ {
		var sh []int
		for s := p; s < r.shards; s += n {
			sh = append(sh, s)
		}
		out = append(out, subset{shards: sh, chain: rotateWorkers(r.owners, p)})
	}
	return out
}

func rotateWorkers(ws []*worker, by int) []*worker {
	out := make([]*worker, 0, len(ws))
	out = append(out, ws[by%len(ws):]...)
	return append(out, ws[:by%len(ws)]...)
}

// routeCache holds resolved routes; entries come from the static table
// or from discovery and are invalidated when a fan-out finds them
// stale (a worker evicted the index, or every replica of a subset is
// gone).
type routeCache struct {
	mu     sync.RWMutex
	routes map[string]route
}

func (rc *routeCache) get(index string) (route, bool) {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	r, ok := rc.routes[index]
	return r, ok
}

func (rc *routeCache) put(r route) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.routes == nil {
		rc.routes = make(map[string]route)
	}
	rc.routes[r.index] = r
}

func (rc *routeCache) drop(index string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	delete(rc.routes, index)
}

// resolve returns the route for index: from the cache, then the static
// table, then discovery against the workers' /v1/indexes listings.
func (co *Coordinator) resolve(ctx context.Context, index string) (route, error) {
	if r, ok := co.routes.get(index); ok {
		return r, nil
	}
	if co.static != nil {
		e, ok := co.static.Indexes[index]
		if !ok {
			return route{}, fmt.Errorf("%w: %q (not in the static route table)", ErrNoRoute, index)
		}
		owners := make([]*worker, 0, len(e.Workers))
		for _, u := range e.Workers {
			wk, ok := co.workerByURL[u]
			if !ok {
				return route{}, fmt.Errorf("%w: index %q routes to unknown worker %q", ErrRoutes, index, u)
			}
			owners = append(owners, wk)
		}
		r := route{index: index, shards: e.Shards, owners: owners}
		co.routes.put(r)
		return r, nil
	}
	return co.discover(ctx, index)
}

// discover asks every worker which indexes it serves and builds the
// route for index from the answers. Workers must agree on the shard
// count; a worker that cannot be reached is simply not an owner this
// round (the route re-resolves after invalidation). Results for all
// indexes seen are cached, so one discovery round typically routes the
// whole fleet.
func (co *Coordinator) discover(ctx context.Context, index string) (route, error) {
	type listing struct {
		w    *worker
		idxs map[string]int // name -> shard count
	}
	results := make([]listing, len(co.workers))
	var wg sync.WaitGroup
	for i, wk := range co.workers {
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			list, err := wk.c.Indexes(ctx)
			if err != nil {
				co.log.Warn("discovery failed", "worker", wk.url, "error", err)
				return
			}
			m := make(map[string]int, len(list.Indexes))
			for _, info := range list.Indexes {
				m[info.Name] = info.Shards
			}
			results[i] = listing{w: wk, idxs: m}
		}(i, wk)
	}
	wg.Wait()

	byIndex := make(map[string]*route)
	var conflicts []string
	for _, l := range results {
		if l.w == nil {
			continue
		}
		for name, shards := range l.idxs {
			r, ok := byIndex[name]
			if !ok {
				byIndex[name] = &route{index: name, shards: shards, owners: []*worker{l.w}}
				continue
			}
			if r.shards != shards {
				conflicts = append(conflicts, name)
				continue
			}
			r.owners = append(r.owners, l.w)
		}
	}
	sort.Strings(conflicts)
	for _, name := range conflicts {
		delete(byIndex, name)
		co.log.Warn("discovery conflict: workers disagree on shard count", "index", name)
	}
	for _, r := range byIndex {
		co.routes.put(*r)
	}
	r, ok := byIndex[index]
	if !ok {
		for _, name := range conflicts {
			if name == index {
				return route{}, fmt.Errorf("%w: index %q (workers disagree on shard count)", ErrRoutes, index)
			}
		}
		return route{}, fmt.Errorf("%w: %q", ErrNoRoute, index)
	}
	return *r, nil
}
