package server_test

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bwtmatch"
	"bwtmatch/server"
	"bwtmatch/server/client"
)

// startDaemon builds kmserved, starts it on an ephemeral port and
// returns its base URL plus the running process. The caller is
// responsible for signalling shutdown (or it is killed at cleanup).
func startDaemon(t *testing.T, binDir string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	bin := filepath.Join(binDir, "kmserved")
	build := exec.Command("go", "build", "-o", bin, "./cmd/kmserved")
	build.Dir = repoRoot(t)
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building kmserved: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	sc := bufio.NewScanner(stdout)
	urlc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if _, url, ok := strings.Cut(sc.Text(), "listening on "); ok {
				urlc <- url
				break
			}
		}
	}()
	select {
	case url := <-urlc:
		return url, cmd
	case <-time.After(30 * time.Second):
		t.Fatal("kmserved did not announce its address")
		return "", nil
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(dir) // server/ -> repo root
}

func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	work := t.TempDir()

	// Build a genome, its saved index, and 1000 mutated reads.
	rng := rand.New(rand.NewSource(99))
	target := make([]byte, 1<<16)
	for i := range target {
		target[i] = "acgt"[rng.Intn(4)]
	}
	idx, err := bwtmatch.New(target)
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(work, "genome.bwt")
	if err := idx.SaveFile(indexPath); err != nil {
		t.Fatal(err)
	}
	const nReads = 1000
	reads := make([]server.Read, nReads)
	want := make([][]bwtmatch.Match, nReads)
	for i := range reads {
		m := 60 + rng.Intn(40)
		p := rng.Intn(len(target) - m)
		pat := append([]byte(nil), target[p:p+m]...)
		for j := 0; j < 2; j++ {
			pat[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		}
		reads[i] = server.Read{ID: fmt.Sprintf("read%d", i), Seq: string(pat)}
		if want[i], err = idx.Search(pat, 4); err != nil {
			t.Fatal(err)
		}
	}

	base, cmd := startDaemon(t, work)
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	// Register the saved index over the API and verify the listing.
	info, err := c.RegisterIndex(ctx, "genome", indexPath)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if info.Bases != len(target) {
		t.Fatalf("registered %d bases, want %d", info.Bases, len(target))
	}
	if _, err := c.RegisterIndex(ctx, "genome", indexPath); client.StatusCode(err) != 409 {
		t.Errorf("duplicate register error = %v, want 409", err)
	}
	list, err := c.Indexes(ctx)
	if err != nil || len(list.Indexes) != 1 {
		t.Fatalf("indexes: %+v %v", list, err)
	}

	// Round-trip the 1000-read batch and cross-check against the library,
	// from several clients at once to exercise concurrent serving.
	var wg sync.WaitGroup
	responses := make([]*server.SearchResponse, 3)
	errs := make([]error, 3)
	for w := range responses {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			responses[w], errs[w] = c.Search(ctx, server.SearchRequest{
				Index: "genome", K: 4, Reads: reads,
			})
		}(w)
	}
	wg.Wait()
	totalMatches := 0
	for w, resp := range responses {
		if errs[w] != nil {
			t.Fatalf("client %d: %v", w, errs[w])
		}
		if resp.Reads != nReads || resp.Errors != 0 || len(resp.Results) != nReads {
			t.Fatalf("client %d response: reads=%d errors=%d", w, resp.Reads, resp.Errors)
		}
		for i, rr := range resp.Results {
			if len(rr.Matches) != len(want[i]) {
				t.Fatalf("read %d: %d matches, want %d", i, len(rr.Matches), len(want[i]))
			}
			for j, m := range rr.Matches {
				if m.Pos != want[i][j].Pos || m.Mismatches != want[i][j].Mismatches {
					t.Fatalf("read %d match %d: %+v vs %+v", i, j, m, want[i][j])
				}
			}
		}
		totalMatches += resp.Matches
	}

	// Metrics must reflect the served traffic.
	met, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if q := int(met["queries_total"].(float64)); q != 3*nReads {
		t.Errorf("queries_total = %d, want %d", q, 3*nReads)
	}
	if m := int(met["matches_total"].(float64)); m != totalMatches {
		t.Errorf("matches_total = %d, want %d", m, totalMatches)
	}
	if s := met["step_calls_total"].(float64); s == 0 {
		t.Error("step_calls_total = 0")
	}

	// kmsearch -server: the CLI as a remote client agrees with the API.
	ksBin := filepath.Join(work, "kmsearch")
	build := exec.Command("go", "build", "-o", ksBin, "./cmd/kmsearch")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building kmsearch: %v\n%s", err, out)
	}
	readsPath := filepath.Join(work, "reads.txt")
	var sb strings.Builder
	for _, r := range reads[:20] {
		fmt.Fprintf(&sb, ">%s\n%s\n", r.ID, r.Seq)
	}
	os.WriteFile(readsPath, []byte(sb.String()), 0o644)
	out, err := exec.Command(ksBin,
		"-server", base, "-index", "genome", "-reads", readsPath, "-k", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("kmsearch -server: %v\n%s", err, out)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if !strings.HasPrefix(line, "read") {
			continue
		}
		var id string
		var n int
		if _, err := fmt.Sscanf(line, "%s %d", &id, &n); err != nil {
			t.Fatalf("kmsearch line %q: %v", line, err)
		}
		if id == fmt.Sprintf("read%d", i) && n != len(want[i]) {
			t.Errorf("kmsearch %s: %d matches, want %d", id, n, len(want[i]))
		}
	}

	// Graceful shutdown: SIGTERM drains and exits zero.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("kmserved exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("kmserved did not exit after SIGTERM")
	}
}

func TestDaemonPreload(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	work := t.TempDir()
	rng := rand.New(rand.NewSource(100))
	target := make([]byte, 4096)
	for i := range target {
		target[i] = "acgt"[rng.Intn(4)]
	}
	idx, _ := bwtmatch.New(target)
	indexPath := filepath.Join(work, "g.bwt")
	if err := idx.SaveFile(indexPath); err != nil {
		t.Fatal(err)
	}

	base, _ := startDaemon(t, work, "-load", "g="+indexPath, "-budget", "64")
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resp, err := c.Search(ctx, server.SearchRequest{
		Index: "g", K: 1, Seq: string(target[128:168]),
	})
	if err != nil {
		t.Fatalf("search against preloaded index: %v", err)
	}
	if resp.Matches == 0 {
		t.Fatal("planted pattern not found on preloaded index")
	}
	if _, err := c.Search(ctx, server.SearchRequest{Index: "missing", Seq: "acgt"}); client.StatusCode(err) != 404 {
		t.Errorf("unknown index error = %v, want 404", err)
	}
}
