package server

import (
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	for _, d := range []time.Duration{
		50 * time.Microsecond,  // le0.1
		500 * time.Microsecond, // le1
		5 * time.Millisecond,   // le10
		2 * time.Second,        // le3000
		10 * time.Second,       // +inf
	} {
		h.observe(d)
	}
	snap := h.snapshot()
	if snap["count"].(int64) != 5 {
		t.Fatalf("count = %v", snap["count"])
	}
	buckets := snap["buckets_ms"].(map[string]int64)
	for _, want := range []string{"le0.1", "le1", "le10", "le3000", "+inf"} {
		if buckets[want] != 1 {
			t.Errorf("bucket %s = %d, want 1", want, buckets[want])
		}
	}
	sum := snap["sum_ms"].(float64)
	if sum < 12000 || sum > 12010 {
		t.Errorf("sum_ms = %v", sum)
	}
	if mean := snap["mean_ms"].(float64); mean < 2400 || mean > 2403 {
		t.Errorf("mean_ms = %v", mean)
	}
}

func TestMetricsSnapshotOmitsIdleMethods(t *testing.T) {
	var m Metrics
	m.ObserveBatch(0, time.Millisecond, 10, 3, 1, 100, 200, 5)
	snap := m.Snapshot()
	lat := snap["method_latencies_ms"].(map[string]any)
	if len(lat) != 1 || lat["a"] == nil {
		t.Fatalf("latencies: %v", lat)
	}
	if snap["queries_total"].(int64) != 10 || snap["matches_total"].(int64) != 3 ||
		snap["errors_total"].(int64) != 1 {
		t.Errorf("counters: %v", snap)
	}
	if snap["mtree_leaves_total"].(int64) != 100 || snap["step_calls_total"].(int64) != 200 ||
		snap["memo_hits_total"].(int64) != 5 {
		t.Errorf("paper counters: %v", snap)
	}
}

func TestMethodNameRoundTrip(t *testing.T) {
	for _, name := range []string{"a", "bwt", "stree", "amir", "cole", "online", "seed"} {
		m, err := ParseMethod(name)
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", name, err)
		}
		if got := methodNameFor(int(m)); got != name {
			t.Errorf("methodNameFor(%v) = %q, want %q", m, got, name)
		}
	}
	if _, err := ParseMethod("quantum"); err == nil {
		t.Error("unknown method accepted")
	}
	if m, err := ParseMethod(""); err != nil || m != 0 {
		t.Errorf("empty method: %v %v", m, err)
	}
}
