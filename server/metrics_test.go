package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bwtmatch/internal/obs"
)

func TestMetricsSnapshotOmitsIdleMethods(t *testing.T) {
	m := NewMetrics()
	m.ObserveBatch(0, time.Millisecond, 10, 3, 1, 100, 200, 5)
	snap := m.Snapshot()
	lat := snap["method_latencies_ms"].(map[string]any)
	if len(lat) != 1 || lat["a"] == nil {
		t.Fatalf("latencies: %v", lat)
	}
	if snap["queries_total"].(int64) != 10 || snap["matches_total"].(int64) != 3 ||
		snap["errors_total"].(int64) != 1 {
		t.Errorf("counters: %v", snap)
	}
	if snap["mtree_leaves_total"].(int64) != 100 || snap["step_calls_total"].(int64) != 200 ||
		snap["memo_hits_total"].(int64) != 5 {
		t.Errorf("paper counters: %v", snap)
	}
	hist := lat["a"].(map[string]any)
	if hist["count"].(int64) != 1 {
		t.Errorf("histogram count: %v", hist)
	}
	// The per-method histograms carry the obs default bucket set, whose
	// size the compiler derives from the bounds array (no len11 hack).
	buckets := hist["buckets_ms"].(map[string]int64)
	if len(buckets) != obs.DefaultBucketCount {
		t.Errorf("bucket count = %d, want %d", len(buckets), obs.DefaultBucketCount)
	}
}

func TestMetricsWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.ObserveBatch(0, 2*time.Millisecond, 7, 2, 0, 50, 80, 3)
	m.ObserveBatch(1, 40*time.Millisecond, 1, 0, 1, 9, 12, 0)
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE kmserved_queries_total counter",
		"kmserved_queries_total 8",
		"kmserved_mtree_leaves_total 59",
		"kmserved_in_flight 0",
		"# TYPE kmserved_search_latency_ms histogram",
		`kmserved_search_latency_ms_bucket{method="a",le="+Inf"} 1`,
		`kmserved_search_latency_ms_count{method="bwt"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, out)
	}
}

func TestMetricsPrometheusValidWhenIdle(t *testing.T) {
	// A freshly started server must still serve a valid exposition (the
	// histogram series are absent, but every counter is present).
	var sb strings.Builder
	NewMetrics().WritePrometheus(&sb)
	if err := obs.ValidateExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("invalid idle exposition: %v\n%s", err, sb.String())
	}
}

func TestMethodNameRoundTrip(t *testing.T) {
	for _, name := range []string{"a", "bwt", "stree", "amir", "cole", "online", "seed"} {
		m, err := ParseMethod(name)
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", name, err)
		}
		if got := methodNameFor(int(m)); got != name {
			t.Errorf("methodNameFor(%v) = %q, want %q", m, got, name)
		}
	}
	if _, err := ParseMethod("quantum"); err == nil {
		t.Error("unknown method accepted")
	}
	if m, err := ParseMethod(""); err != nil || m != 0 {
		t.Errorf("empty method: %v %v", m, err)
	}
}

// TestObserveBatchConcurrent drives ObserveBatch from many goroutines
// and checks no count is lost across the sharded counters and
// histograms (run under -race in make check).
func TestObserveBatchConcurrent(t *testing.T) {
	m := NewMetrics()
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.ObserveBatch(0, time.Millisecond, 3, 2, 1, 10, 20, 5)
			}
		}()
	}
	wg.Wait()
	n := int64(goroutines * perG)
	for _, c := range []struct {
		name string
		got  int64
		want int64
	}{
		{"batches", m.BatchesTotal.Load(), n},
		{"queries", m.QueriesTotal.Load(), 3 * n},
		{"matches", m.MatchesTotal.Load(), 2 * n},
		{"errors", m.ErrorsTotal.Load(), n},
		{"leaves", m.MTreeLeavesTotal.Load(), 10 * n},
		{"steps", m.StepCallsTotal.Load(), 20 * n},
		{"memo", m.MemoHitsTotal.Load(), 5 * n},
	} {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if got := m.perMethod[0].Count(); got != n {
		t.Errorf("histogram count = %d, want %d", got, n)
	}
}

// BenchmarkObserveBatchParallel measures the full per-batch metrics
// update under contention — the path the striped cells exist for.
func BenchmarkObserveBatchParallel(b *testing.B) {
	m := NewMetrics()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.ObserveBatch(0, time.Millisecond, 64, 10, 0, 1000, 5000, 200)
		}
	})
}
