package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bwtmatch"
	"bwtmatch/internal/obs"
)

func randomDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "acgt"[rng.Intn(4)]
	}
	return s
}

// newTestServer builds a server with one in-process index named "g"
// over a deterministic random target, returning both.
func newTestServer(t *testing.T, cfg Config, bases int) (*Server, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	target := randomDNA(rng, bases)
	idx, err := bwtmatch.New(target)
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.RegisterIndex("g", idx); err != nil {
		t.Fatal(err)
	}
	return s, target
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestSearchValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 4, MaxK: 8}, 2000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{not json`, http.StatusBadRequest},
		{"unknown field", `{"index":"g","seq":"acgt","bogus":1}`, http.StatusBadRequest},
		{"trailing garbage", `{"index":"g","seq":"acgt"} extra`, http.StatusBadRequest},
		{"no reads", `{"index":"g","k":2}`, http.StatusBadRequest},
		{"seq and reads", `{"index":"g","seq":"acgt","reads":[{"seq":"acgt"}]}`, http.StatusBadRequest},
		{"unknown method", `{"index":"g","seq":"acgt","method":"quantum"}`, http.StatusBadRequest},
		{"unknown index", `{"index":"nope","seq":"acgt"}`, http.StatusNotFound},
		{"k too large", `{"index":"g","seq":"acgt","k":9}`, http.StatusBadRequest},
		{"k negative", `{"index":"g","seq":"acgt","k":-1}`, http.StatusBadRequest},
		{"per-read k out of range", `{"index":"g","reads":[{"seq":"acgt","k":99}]}`, http.StatusBadRequest},
		{"oversized batch", `{"index":"g","reads":[{"seq":"a"},{"seq":"a"},{"seq":"a"},{"seq":"a"},{"seq":"a"}]}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts, "/v1/search", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, resp.StatusCode, c.want, body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: no structured error in %s", c.name, body)
		}
	}
	if got := s.Metrics().RejectedTotal.Load(); got != int64(len(cases)) {
		t.Errorf("rejected_total = %d, want %d", got, len(cases))
	}
}

func TestSearchMatchesLibrary(t *testing.T) {
	s, target := newTestServer(t, Config{}, 5000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	idx, _ := bwtmatch.New(target)
	rng := rand.New(rand.NewSource(42))
	var reads []Read
	type expect struct {
		matches []bwtmatch.Match
	}
	var want []expect
	for i := 0; i < 50; i++ {
		m := 12 + rng.Intn(30)
		p := rng.Intn(len(target) - m)
		pat := append([]byte(nil), target[p:p+m]...)
		pat[rng.Intn(m)] = "acgt"[rng.Intn(4)]
		k := rng.Intn(4)
		reads = append(reads, Read{ID: fmt.Sprintf("r%d", i), Seq: string(pat), K: &k})
		direct, err := idx.Search(pat, k)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, expect{matches: direct})
	}
	reqBody, _ := json.Marshal(SearchRequest{Index: "g", Reads: reads})
	resp, body := postJSON(t, ts, "/v1/search", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Reads != len(reads) || len(sr.Results) != len(reads) || sr.Errors != 0 {
		t.Fatalf("reads=%d results=%d errors=%d", sr.Reads, len(sr.Results), sr.Errors)
	}
	total := 0
	for i, rr := range sr.Results {
		if rr.ID != reads[i].ID {
			t.Fatalf("result %d: ID %q, want %q", i, rr.ID, reads[i].ID)
		}
		if len(rr.Matches) != len(want[i].matches) {
			t.Fatalf("read %d: %d matches, want %d", i, len(rr.Matches), len(want[i].matches))
		}
		for j, m := range rr.Matches {
			w := want[i].matches[j]
			if m.Pos != w.Pos || m.Mismatches != w.Mismatches {
				t.Fatalf("read %d match %d: %+v, want %+v", i, j, m, w)
			}
		}
		total += len(rr.Matches)
	}
	if sr.Matches != total {
		t.Errorf("response matches=%d, sum=%d", sr.Matches, total)
	}

	met := s.Metrics()
	if met.QueriesTotal.Load() != int64(len(reads)) {
		t.Errorf("queries_total = %d, want %d", met.QueriesTotal.Load(), len(reads))
	}
	if met.MatchesTotal.Load() != int64(total) {
		t.Errorf("matches_total = %d, want %d", met.MatchesTotal.Load(), total)
	}
	if met.BatchesTotal.Load() != 1 {
		t.Errorf("batches_total = %d, want 1", met.BatchesTotal.Load())
	}
	if met.StepCallsTotal.Load() == 0 {
		t.Error("step_calls_total not surfaced from Stats")
	}
}

func TestSearchSingleReadShorthand(t *testing.T) {
	s, target := newTestServer(t, Config{}, 3000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pat := string(target[100:140])
	resp, body := postJSON(t, ts, "/v1/search",
		fmt.Sprintf(`{"index":"g","k":0,"seq":%q}`, pat))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	json.Unmarshal(body, &sr)
	if len(sr.Results) != 1 || len(sr.Results[0].Matches) == 0 {
		t.Fatalf("planted pattern not found: %s", body)
	}
	if sr.Results[0].Matches[0].Pos != 100 && sr.Matches < 1 {
		t.Fatalf("unexpected matches: %s", body)
	}
}

func TestSearchPerReadErrorsDoNotAbortBatch(t *testing.T) {
	s, target := newTestServer(t, Config{}, 2000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"index":"g","k":1,"reads":[{"id":"ok","seq":%q},{"id":"empty","seq":""}]}`,
		string(target[10:40]))
	resp, raw := postJSON(t, ts, "/v1/search", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var sr SearchResponse
	json.Unmarshal(raw, &sr)
	if sr.Errors != 1 || sr.Results[1].Error == "" {
		t.Fatalf("empty read not reported per-read: %s", raw)
	}
	if len(sr.Results[0].Matches) == 0 || sr.Results[0].Error != "" {
		t.Fatalf("good read suffered from bad neighbor: %s", raw)
	}
}

func TestIndexLifecycleEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dir := t.TempDir()
	idx, _ := bwtmatch.New(randomDNA(rng, 1500))
	path := filepath.Join(dir, "g.bwt")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "bad.bwt")
	os.WriteFile(garbage, []byte("not an index at all"), 0o644)

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reg := func(name, p string) (*http.Response, []byte) {
		return postJSON(t, ts, "/v1/indexes", fmt.Sprintf(`{"name":%q,"path":%q}`, name, p))
	}
	if resp, body := reg("g", path); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	if resp, _ := reg("g", path); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate register: %d, want 409", resp.StatusCode)
	}
	if resp, _ := reg("bad", garbage); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("garbage register: %d, want 422", resp.StatusCode)
	}
	if resp, _ := reg("gone", filepath.Join(dir, "missing.bwt")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing-file register: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/v1/indexes", `{"name":"","path":""}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty register: %d, want 400", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	var list IndexListResponse
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list.Indexes) != 1 || list.Indexes[0].Name != "g" || list.Indexes[0].Bases != 1500 {
		t.Fatalf("index list: %+v", list)
	}
	if list.ResidentBytes <= 0 {
		t.Errorf("resident bytes not reported: %+v", list)
	}

	del := func(name string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/indexes/"+name, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del("g"); code != http.StatusOK {
		t.Errorf("delete: %d", code)
	}
	if code := del("g"); code != http.StatusNotFound {
		t.Errorf("double delete: %d, want 404", code)
	}
	if got := s.Metrics().IndexesLoaded.Load(); got != 1 {
		t.Errorf("indexes_loaded = %d, want 1", got)
	}
	if got := s.Metrics().IndexesEvicted.Load(); got != 1 {
		t.Errorf("indexes_evicted = %d, want 1", got)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	s, target := newTestServer(t, Config{}, 2000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	postJSON(t, ts, "/v1/search", fmt.Sprintf(`{"index":"g","k":1,"seq":%q}`, string(target[5:35])))

	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if m["queries_total"].(float64) != 1 {
		t.Errorf("metrics queries_total = %v", m["queries_total"])
	}
	lat, ok := m["method_latencies_ms"].(map[string]any)
	if !ok || lat["a"] == nil {
		t.Errorf("metrics missing method latency histogram: %v", m["method_latencies_ms"])
	}

	// /metrics now serves the Prometheus text exposition.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "kmserved_queries_total 1") {
		t.Errorf("prometheus exposition missing query counter:\n%s", body)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Errorf("invalid exposition: %v", err)
	}
}

func TestGracefulShutdownDrain(t *testing.T) {
	s, target := newTestServer(t, Config{}, 4000)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookSearchStart = func() {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Request A blocks inside the search while counted as in-flight.
	type result struct {
		code int
		err  error
	}
	resA := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/search", "application/json",
			strings.NewReader(fmt.Sprintf(`{"index":"g","k":2,"seq":%q}`, string(target[50:90]))))
		if err != nil {
			resA <- result{err: err}
			return
		}
		resp.Body.Close()
		resA <- result{code: resp.StatusCode}
	}()
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Shutdown must not complete while A is still in flight.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with a search in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New searches are refused while draining; healthz reports it.
	resp, body := postJSON(t, ts, "/v1/search",
		fmt.Sprintf(`{"index":"g","k":0,"seq":%q}`, string(target[0:30])))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("search while draining: %d %s, want 503", resp.StatusCode, body)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", hr.StatusCode)
	}

	// Releasing A lets the drain finish, and A still gets its answer.
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	a := <-resA
	if a.err != nil || a.code != http.StatusOK {
		t.Fatalf("in-flight request after drain: %+v", a)
	}
}

func TestShutdownTimeout(t *testing.T) {
	s, target := newTestServer(t, Config{}, 2000)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookSearchStart = func() {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	go http.Post(ts.URL+"/v1/search", "application/json",
		strings.NewReader(fmt.Sprintf(`{"index":"g","k":0,"seq":%q}`, string(target[0:20]))))
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil despite a stuck search")
	}
}

func TestRequestTimeoutCancelsBatch(t *testing.T) {
	s, target := newTestServer(t, Config{DefaultTimeout: time.Nanosecond}, 3000)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var reads []Read
	for i := 0; i < 64; i++ {
		reads = append(reads, Read{ID: fmt.Sprintf("r%d", i), Seq: string(target[i : i+40])})
	}
	raw, _ := json.Marshal(SearchRequest{Index: "g", K: 2, Reads: reads})
	resp, body := postJSON(t, ts, "/v1/search", string(raw))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SearchResponse
	json.Unmarshal(body, &sr)
	// With a 1ns deadline nearly every read must report cancellation (the
	// warm-up read may slip through before the first deadline check).
	if sr.Errors < len(reads)-2 {
		t.Errorf("only %d of %d reads cancelled by deadline", sr.Errors, len(reads))
	}
}
