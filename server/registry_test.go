package server

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"bwtmatch"
)

func buildIndex(t *testing.T, seed int64, bases int) *bwtmatch.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	idx, err := bwtmatch.New(randomDNA(rng, bases))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestRegistryAddGetRemove(t *testing.T) {
	r := NewRegistry(0)
	idx := buildIndex(t, 1, 800)
	if err := r.Add("g", idx); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("g", idx); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Add: %v, want ErrExists", err)
	}
	if err := r.Add("", idx); err == nil {
		t.Error("empty name accepted")
	}
	got, err := r.Get("g")
	if err != nil || got != idx {
		t.Fatalf("Get: %v %v", got, err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing): %v, want ErrNotFound", err)
	}
	if !r.Remove("g") || r.Remove("g") {
		t.Error("Remove semantics wrong")
	}
	if r.Len() != 0 || r.Resident() != 0 {
		t.Errorf("registry not empty after Remove: len=%d resident=%d", r.Len(), r.Resident())
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	a := buildIndex(t, 2, 1000)
	perIndex := indexBytes(a)
	// Budget for exactly two indexes of this size.
	r := NewRegistry(2*perIndex + perIndex/2)
	var evicted []string
	r.onEvict = func(name string) { evicted = append(evicted, name) }

	b := buildIndex(t, 3, 1000)
	c := buildIndex(t, 4, 1000)
	if err := r.Add("a", a); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("b", b); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" becomes the LRU victim.
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("c", c); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if _, err := r.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("b still resident after eviction")
	}
	for _, name := range []string{"a", "c"} {
		if _, err := r.Get(name); err != nil {
			t.Errorf("%s missing after eviction: %v", name, err)
		}
	}
	if r.Resident() > r.Budget() {
		t.Errorf("resident %d exceeds budget %d", r.Resident(), r.Budget())
	}
}

func TestRegistryRejectsOversizedIndex(t *testing.T) {
	idx := buildIndex(t, 5, 2000)
	r := NewRegistry(indexBytes(idx) / 2)
	if err := r.Add("g", idx); err == nil {
		t.Fatal("index larger than the whole budget accepted")
	}
	if r.Len() != 0 {
		t.Error("failed Add left residue")
	}
}

func TestRegistryList(t *testing.T) {
	r := NewRegistry(0)
	r.Add("zeta", buildIndex(t, 6, 400))
	r.Add("alpha", buildIndex(t, 7, 600))
	r.Get("alpha")
	list := r.List()
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "zeta" {
		t.Fatalf("List: %+v", list)
	}
	if list[0].Bases != 600 || list[0].Queries != 1 || list[1].Queries != 0 {
		t.Errorf("List details: %+v", list)
	}
}

// TestRegistryConcurrency exercises the RWMutex paths under the race
// detector: concurrent Gets (read path) against Add/Remove (write path).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry(0)
	base := buildIndex(t, 8, 500)
	r.Add("stable", base)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					r.Get("stable")
				case 1:
					name := fmt.Sprintf("t%d", w)
					if err := r.Add(name, base); err == nil {
						r.Remove(name)
					}
				case 2:
					r.List()
				case 3:
					r.Resident()
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := r.Get("stable"); err != nil {
		t.Fatalf("stable index lost: %v", err)
	}
}

// TestRegistryReloadAppendedContainer covers the hot-reload path: a
// sharded container is registered, grown on disk with the streaming
// append builder, and reloaded — the entry must show the new shard
// count and the LRU cost accounting must grow with the container.
func TestRegistryReloadAppendedContainer(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := randomDNA(rng, 4000)
	tail := randomDNA(rng, 2500)
	path := filepath.Join(t.TempDir(), "g.km")

	sb, err := bwtmatch.NewStreamBuilder(path,
		bwtmatch.WithShardSize(1024), bwtmatch.WithMaxPatternLen(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Write(base); err != nil {
		t.Fatal(err)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(0)
	if _, err := r.LoadFile("g", path); err != nil {
		t.Fatal(err)
	}
	before := r.List()
	if len(before) != 1 || before[0].Shards != 4 || before[0].Bases != 4000 {
		t.Fatalf("initial List: %+v", before)
	}
	residentBefore := r.Resident()

	ab, err := bwtmatch.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ab.Write(tail); err != nil {
		t.Fatal(err)
	}
	if err := ab.Close(); err != nil {
		t.Fatal(err)
	}

	// Bump the query counter so we can check it survives the swap.
	if _, err := r.Get("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReloadFile("g", path); err != nil {
		t.Fatal(err)
	}
	after := r.List()
	if len(after) != 1 || after[0].Shards != 7 || after[0].Bases != 6500 {
		t.Fatalf("reloaded List: %+v", after)
	}
	if after[0].Queries != 1 {
		t.Errorf("query counter lost across reload: %+v", after[0])
	}
	if r.Resident() <= residentBefore {
		t.Errorf("resident cost did not grow with the container: %d -> %d", residentBefore, r.Resident())
	}
	if r.Len() != 1 {
		t.Errorf("Replace duplicated the entry: %d", r.Len())
	}

	// Replace on a fresh name degrades to Add.
	if err := r.Replace("h", buildIndex(t, 3, 700)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("Replace on fresh name: len=%d", r.Len())
	}
}

// buildRelativePair builds a base and n relative tenants at ~1%
// divergence from it.
func buildRelativeTenants(t *testing.T, seed int64, bases, n int) (*bwtmatch.Index, []*bwtmatch.RelativeIndex) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	baseText := randomDNA(rng, bases)
	base, err := bwtmatch.New(baseText)
	if err != nil {
		t.Fatal(err)
	}
	tenants := make([]*bwtmatch.RelativeIndex, n)
	for i := range tenants {
		tenText := append([]byte(nil), baseText...)
		for j := 0; j < bases/100; j++ {
			tenText[rng.Intn(len(tenText))] = "acgt"[rng.Intn(4)]
		}
		tenants[i], err = bwtmatch.NewRelative(base, tenText)
		if err != nil {
			t.Fatal(err)
		}
	}
	return base, tenants
}

// TestRegistryRelativeSharing checks the multi-tenant accounting: N
// tenants of one base cost one base plus N deltas, and /v1/indexes
// reports the split.
func TestRegistryRelativeSharing(t *testing.T) {
	base, tenants := buildRelativeTenants(t, 21, 2000, 3)
	r := NewRegistry(0)
	for i, tx := range tenants {
		if err := r.Add(fmt.Sprintf("t%d", i), tx); err != nil {
			t.Fatal(err)
		}
	}
	want := indexBytes(base)
	for _, tx := range tenants {
		want += int64(tx.DeltaBytes())
	}
	if r.Resident() != want {
		t.Fatalf("resident %d, want base+deltas %d (base charged once)", r.Resident(), want)
	}
	if _, ok := r.SharedBase(tenants[0].BaseFingerprint()); !ok {
		t.Fatal("base not shared")
	}
	list := r.List()
	if len(list) != 3 {
		t.Fatalf("List: %+v", list)
	}
	for _, info := range list {
		if info.Base == "" || info.DeltaBytes == 0 || info.SharedBaseBytes != indexBytes(base) {
			t.Fatalf("tenant info missing relative accounting: %+v", info)
		}
		if info.Base != list[0].Base {
			t.Fatalf("tenants disagree on base ID: %+v", list)
		}
	}
	relBases, relTenants := r.relativeSnapshot()
	if len(relBases) != 1 || relBases[0].tenants != 3 {
		t.Fatalf("relativeSnapshot bases: %+v", relBases)
	}
	if len(relTenants) != 3 {
		t.Fatalf("relativeSnapshot tenants: %+v", relTenants)
	}
}

// TestRegistryRelativeEviction checks base pinning: evicting or
// removing tenants releases the base only when the last one goes, and
// a base with live tenants survives LRU pressure that evicts its
// sibling tenants.
func TestRegistryRelativeEviction(t *testing.T) {
	base, tenants := buildRelativeTenants(t, 22, 2000, 3)
	baseCost := indexBytes(base)
	// The incoming tenant must be the smallest delta so that evicting
	// one sibling is enough — a deterministic single-victim eviction.
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].DeltaBytes() > tenants[j].DeltaBytes() })
	t0, t1, t2 := tenants[0], tenants[1], tenants[2]
	// Budget: base + two deltas, nothing spare for a third.
	budget := baseCost + int64(t0.DeltaBytes()) + int64(t1.DeltaBytes())
	r := NewRegistry(budget)
	var evicted []string
	r.onEvict = func(name string) { evicted = append(evicted, name) }
	if err := r.Add("t0", t0); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("t1", t1); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 0 {
		t.Fatalf("unexpected evictions: %v", evicted)
	}
	if _, err := r.Get("t0"); err != nil { // t1 becomes LRU
		t.Fatal(err)
	}
	// A third tenant of the same base forces eviction of tenant t1 —
	// only tenant entries are LRU victims; the base must stay resident
	// because t0 (and now t2) still hold it.
	if err := r.Add("t2", t2); err != nil {
		t.Fatal(err)
	}
	if len(evicted) == 0 || evicted[0] != "t1" {
		t.Fatalf("evicted %v, want t1 first", evicted)
	}
	if _, ok := r.SharedBase(t0.BaseFingerprint()); !ok {
		t.Fatal("base freed while tenants still live")
	}
	relBases, _ := r.relativeSnapshot()
	if len(relBases) != 1 || relBases[0].tenants != 2 {
		t.Fatalf("tenant refcount after eviction: %+v", relBases)
	}
	// Removing the remaining tenants frees the base exactly at the last
	// release.
	if !r.Remove("t0") {
		t.Fatal("t0 missing")
	}
	if _, ok := r.SharedBase(t0.BaseFingerprint()); !ok {
		t.Fatal("base freed while t2 still lives")
	}
	before := r.Resident()
	if !r.Remove("t2") {
		t.Fatal("t2 missing")
	}
	if _, ok := r.SharedBase(t0.BaseFingerprint()); ok {
		t.Fatal("base still resident after last tenant removed")
	}
	if got := before - r.Resident(); got != baseCost+int64(t2.DeltaBytes()) {
		t.Fatalf("removing last tenant freed %d bytes, want delta+base %d", got, baseCost+int64(t2.DeltaBytes()))
	}
	if r.Resident() != 0 || r.Len() != 0 {
		t.Fatalf("registry not empty: resident=%d len=%d", r.Resident(), r.Len())
	}
}

// TestRegistryLoadFileSharedBase checks that loading sibling relative
// containers from disk shares one in-memory base via the fingerprint
// lookup.
func TestRegistryLoadFileSharedBase(t *testing.T) {
	dir := t.TempDir()
	base, tenants := buildRelativeTenants(t, 25, 1500, 2)
	basePath := filepath.Join(dir, "base.km")
	if err := base.SaveFile(basePath); err != nil {
		t.Fatal(err)
	}
	for i, tx := range tenants {
		tx.SetBasePath("base.km")
		if err := tx.SaveFile(filepath.Join(dir, fmt.Sprintf("t%d.km", i))); err != nil {
			t.Fatal(err)
		}
	}
	r := NewRegistry(0)
	m0, err := r.LoadFile("t0", filepath.Join(dir, "t0.km"))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := r.LoadFile("t1", filepath.Join(dir, "t1.km"))
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := m0.(*bwtmatch.RelativeIndex), m1.(*bwtmatch.RelativeIndex)
	if r0.Base() != r1.Base() {
		t.Fatal("tenants loaded separate base copies")
	}
	relBases, _ := r.relativeSnapshot()
	if len(relBases) != 1 || relBases[0].tenants != 2 {
		t.Fatalf("base not shared across LoadFile: %+v", relBases)
	}
}
