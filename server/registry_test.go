package server

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"bwtmatch"
)

func buildIndex(t *testing.T, seed int64, bases int) *bwtmatch.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	idx, err := bwtmatch.New(randomDNA(rng, bases))
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestRegistryAddGetRemove(t *testing.T) {
	r := NewRegistry(0)
	idx := buildIndex(t, 1, 800)
	if err := r.Add("g", idx); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("g", idx); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Add: %v, want ErrExists", err)
	}
	if err := r.Add("", idx); err == nil {
		t.Error("empty name accepted")
	}
	got, err := r.Get("g")
	if err != nil || got != idx {
		t.Fatalf("Get: %v %v", got, err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing): %v, want ErrNotFound", err)
	}
	if !r.Remove("g") || r.Remove("g") {
		t.Error("Remove semantics wrong")
	}
	if r.Len() != 0 || r.Resident() != 0 {
		t.Errorf("registry not empty after Remove: len=%d resident=%d", r.Len(), r.Resident())
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	a := buildIndex(t, 2, 1000)
	perIndex := indexBytes(a)
	// Budget for exactly two indexes of this size.
	r := NewRegistry(2*perIndex + perIndex/2)
	var evicted []string
	r.onEvict = func(name string) { evicted = append(evicted, name) }

	b := buildIndex(t, 3, 1000)
	c := buildIndex(t, 4, 1000)
	if err := r.Add("a", a); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("b", b); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" becomes the LRU victim.
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("c", c); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if _, err := r.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("b still resident after eviction")
	}
	for _, name := range []string{"a", "c"} {
		if _, err := r.Get(name); err != nil {
			t.Errorf("%s missing after eviction: %v", name, err)
		}
	}
	if r.Resident() > r.Budget() {
		t.Errorf("resident %d exceeds budget %d", r.Resident(), r.Budget())
	}
}

func TestRegistryRejectsOversizedIndex(t *testing.T) {
	idx := buildIndex(t, 5, 2000)
	r := NewRegistry(indexBytes(idx) / 2)
	if err := r.Add("g", idx); err == nil {
		t.Fatal("index larger than the whole budget accepted")
	}
	if r.Len() != 0 {
		t.Error("failed Add left residue")
	}
}

func TestRegistryList(t *testing.T) {
	r := NewRegistry(0)
	r.Add("zeta", buildIndex(t, 6, 400))
	r.Add("alpha", buildIndex(t, 7, 600))
	r.Get("alpha")
	list := r.List()
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "zeta" {
		t.Fatalf("List: %+v", list)
	}
	if list[0].Bases != 600 || list[0].Queries != 1 || list[1].Queries != 0 {
		t.Errorf("List details: %+v", list)
	}
}

// TestRegistryConcurrency exercises the RWMutex paths under the race
// detector: concurrent Gets (read path) against Add/Remove (write path).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry(0)
	base := buildIndex(t, 8, 500)
	r.Add("stable", base)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					r.Get("stable")
				case 1:
					name := fmt.Sprintf("t%d", w)
					if err := r.Add(name, base); err == nil {
						r.Remove(name)
					}
				case 2:
					r.List()
				case 3:
					r.Resident()
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := r.Get("stable"); err != nil {
		t.Fatalf("stable index lost: %v", err)
	}
}

// TestRegistryReloadAppendedContainer covers the hot-reload path: a
// sharded container is registered, grown on disk with the streaming
// append builder, and reloaded — the entry must show the new shard
// count and the LRU cost accounting must grow with the container.
func TestRegistryReloadAppendedContainer(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := randomDNA(rng, 4000)
	tail := randomDNA(rng, 2500)
	path := filepath.Join(t.TempDir(), "g.km")

	sb, err := bwtmatch.NewStreamBuilder(path,
		bwtmatch.WithShardSize(1024), bwtmatch.WithMaxPatternLen(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Write(base); err != nil {
		t.Fatal(err)
	}
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(0)
	if _, err := r.LoadFile("g", path); err != nil {
		t.Fatal(err)
	}
	before := r.List()
	if len(before) != 1 || before[0].Shards != 4 || before[0].Bases != 4000 {
		t.Fatalf("initial List: %+v", before)
	}
	residentBefore := r.Resident()

	ab, err := bwtmatch.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ab.Write(tail); err != nil {
		t.Fatal(err)
	}
	if err := ab.Close(); err != nil {
		t.Fatal(err)
	}

	// Bump the query counter so we can check it survives the swap.
	if _, err := r.Get("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReloadFile("g", path); err != nil {
		t.Fatal(err)
	}
	after := r.List()
	if len(after) != 1 || after[0].Shards != 7 || after[0].Bases != 6500 {
		t.Fatalf("reloaded List: %+v", after)
	}
	if after[0].Queries != 1 {
		t.Errorf("query counter lost across reload: %+v", after[0])
	}
	if r.Resident() <= residentBefore {
		t.Errorf("resident cost did not grow with the container: %d -> %d", residentBefore, r.Resident())
	}
	if r.Len() != 1 {
		t.Errorf("Replace duplicated the entry: %d", r.Len())
	}

	// Replace on a fresh name degrades to Add.
	if err := r.Replace("h", buildIndex(t, 3, 700)); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("Replace on fresh name: len=%d", r.Len())
	}
}
