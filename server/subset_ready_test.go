package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bwtmatch"
)

// newShardedTestServer registers a 4-shard index named "g" alongside a
// monolithic "m" and returns the server plus the genome.
func newShardedTestServer(t *testing.T, cfg Config) (*Server, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	genome := randomDNA(rng, 4000)
	sx, err := bwtmatch.NewSharded(genome,
		bwtmatch.WithShards(4), bwtmatch.WithMaxPatternLen(48))
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	if err := s.RegisterIndex("g", sx); err != nil {
		t.Fatal(err)
	}
	mono, err := bwtmatch.New(genome)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterIndex("m", mono); err != nil {
		t.Fatal(err)
	}
	return s, genome
}

func postSearch(t *testing.T, s *Server, body string) (*httptest.ResponseRecorder, SearchResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/search", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var resp SearchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return rec, resp
}

// TestSearchShardSubset drives the worker half of the cluster routing
// contract over the wire: restricted subsets return only owned
// matches, their union reproduces the unrestricted search, and bad
// subsets are 400s.
func TestSearchShardSubset(t *testing.T) {
	s, genome := newShardedTestServer(t, Config{})
	pat := string(genome[1000:1030]) // arbitrary; may straddle a boundary
	full := fmt.Sprintf(`{"index":"g","k":1,"seq":%q}`, pat)
	rec, fullResp := postSearch(t, s, full)
	if rec.Code != http.StatusOK || fullResp.Matches == 0 {
		t.Fatalf("unrestricted search: %d %s", rec.Code, rec.Body)
	}

	var union []Match
	for _, subset := range []string{`[0,2]`, `[1,3]`} {
		rec, resp := postSearch(t, s,
			fmt.Sprintf(`{"index":"g","k":1,"seq":%q,"shards":%s}`, pat, subset))
		if rec.Code != http.StatusOK {
			t.Fatalf("subset %s: %d %s", subset, rec.Code, rec.Body)
		}
		union = append(union, resp.Results[0].Matches...)
	}
	if len(union) != len(fullResp.Results[0].Matches) {
		t.Fatalf("subset union has %d matches, full search %d", len(union), len(fullResp.Results[0].Matches))
	}
	seen := make(map[int]bool)
	for _, m := range union {
		if seen[m.Pos] {
			t.Errorf("position %d returned by two subsets (ownership broken)", m.Pos)
		}
		seen[m.Pos] = true
	}
	for _, m := range fullResp.Results[0].Matches {
		if !seen[m.Pos] {
			t.Errorf("position %d missing from subset union", m.Pos)
		}
	}

	for name, body := range map[string]string{
		"monolithic index": fmt.Sprintf(`{"index":"m","k":1,"seq":%q,"shards":[0]}`, pat),
		"out of range":     fmt.Sprintf(`{"index":"g","k":1,"seq":%q,"shards":[4]}`, pat),
		"negative":         fmt.Sprintf(`{"index":"g","k":1,"seq":%q,"shards":[-1]}`, pat),
		"not increasing":   fmt.Sprintf(`{"index":"g","k":1,"seq":%q,"shards":[2,1]}`, pat),
		"duplicate":        fmt.Sprintf(`{"index":"g","k":1,"seq":%q,"shards":[1,1]}`, pat),
	} {
		if rec, _ := postSearch(t, s, body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
}

// TestReadyzSplitsFromHealthz pins the liveness/readiness split: a
// warming server is alive (200 /healthz) but not ready (503 /readyz
// with a Retry-After hint); draining flips both.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	s, _ := newShardedTestServer(t, Config{})
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("idle readyz: %d", rec.Code)
	}

	s.warming.Add(1)
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz while warming: %d, want 200 (alive)", rec.Code)
	}
	rec := get("/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while warming: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("warming readyz missing Retry-After hint")
	}
	if s.Ready() {
		t.Error("Ready() true while warming")
	}
	s.warming.Add(-1)
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Errorf("readyz after warm-up: %d", rec.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", rec.Code)
	}
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", rec.Code)
	}
}

// TestWarmIndexes pins Config.WarmIndexes: registration kicks off a
// background LoadAll and the server reports ready once every shard is
// resident.
func TestWarmIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	genome := randomDNA(rng, 3000)
	sx, err := bwtmatch.NewSharded(genome,
		bwtmatch.WithShards(3), bwtmatch.WithMaxPatternLen(32))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/g.bwt"
	if err := sx.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	s := New(Config{WarmIndexes: true})
	if err := s.Register("g", path); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	idx, err := s.Registry().Get("g")
	if err != nil {
		t.Fatal(err)
	}
	for i, si := range idx.(*bwtmatch.ShardedIndex).ShardInfo() {
		if !si.Loaded {
			t.Errorf("shard %d not materialized after warm-up", i)
		}
	}
}
