// Package client is a small Go client for the kmserved HTTP API. It is
// used by the e2e tests and by kmsearch's -server mode; the wire types
// live in the parent server package.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"bwtmatch/server"
)

// Client talks to one kmserved instance.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (e.g. to set a
// transport-level timeout or test transport).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New creates a client for the server at base (e.g. "http://host:port").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 2 * time.Minute},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError folds a non-2xx response into an error.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("kmserved: HTTP %d: %s", e.Status, e.Msg)
}

// StatusCode extracts the HTTP status from a client error, or 0.
func StatusCode(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// do round-trips one JSON request; out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e server.ErrorResponse
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks GET /healthz; nil means the server is up and accepting.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// RegisterIndex loads the server-side file path under name.
func (c *Client) RegisterIndex(ctx context.Context, name, path string) (server.IndexInfo, error) {
	var info server.IndexInfo
	err := c.do(ctx, http.MethodPost, "/v1/indexes",
		server.RegisterRequest{Name: name, Path: path}, &info)
	return info, err
}

// Indexes lists the registered indexes.
func (c *Client) Indexes(ctx context.Context) (server.IndexListResponse, error) {
	var out server.IndexListResponse
	err := c.do(ctx, http.MethodGet, "/v1/indexes", nil, &out)
	return out, err
}

// RemoveIndex evicts the named index.
func (c *Client) RemoveIndex(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/indexes/"+url.PathEscape(name), nil, nil)
}

// Search runs one search request (single read or batch).
func (c *Client) Search(ctx context.Context, req server.SearchRequest) (*server.SearchResponse, error) {
	var out server.SearchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/search", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the /metrics.json snapshot as raw JSON keys. (The
// /metrics path serves the Prometheus text exposition for scrapers.)
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/metrics.json", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
