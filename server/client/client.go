// Package client is a small Go client for the kmserved HTTP API. It is
// used by the e2e tests, by kmsearch's -server mode, and by the cluster
// coordinator's worker fan-out; the wire types live in the parent
// server package.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"bwtmatch/internal/obs"
	"bwtmatch/server"
)

// Client talks to one kmserved instance.
type Client struct {
	base string
	hc   *http.Client

	// retries is the number of extra attempts after a 503 or transport
	// failure (0 = no retry); backoff is the base delay before the first
	// retry, doubled per attempt with jitter, overridden by Retry-After.
	retries int
	backoff time.Duration

	// failOnPartial turns a Partial search response into a *PartialError
	// (the response is still returned alongside it).
	failOnPartial bool
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (e.g. to set a
// transport-level timeout or test transport).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout sets the underlying http.Client's total request timeout
// (default 2 minutes; 0 disables the transport-level timeout so only
// the request context bounds the call). Apply after WithHTTPClient to
// adjust a substituted client.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithRetries enables retry on 503 responses and transport failures
// (connection refused, reset): up to max extra attempts, waiting
// base<<attempt with jitter between attempts, or the server's
// Retry-After hint when one is present (load-shedding coordinators and
// draining workers send it). Retries respect the request context. Only
// idempotent calls should be retried; every kmserved endpoint except
// index registration is idempotent, and registration replays surface
// as 409, which is not retried.
func WithRetries(max int, base time.Duration) Option {
	return func(c *Client) {
		if max < 0 {
			max = 0
		}
		if base <= 0 {
			base = 50 * time.Millisecond
		}
		c.retries = max
		c.backoff = base
	}
}

// WithFailOnPartial makes Search return a *PartialError when the
// coordinator answers with Partial set (some shards' matches missing).
// The degraded response is still returned next to the error, so callers
// choose per call whether to use it. Off by default: a partial answer
// is a deliberate availability trade the cluster tier makes, and most
// batch consumers prefer it to nothing.
func WithFailOnPartial() Option {
	return func(c *Client) { c.failOnPartial = true }
}

// New creates a client for the server at base (e.g. "http://host:port").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 2 * time.Minute},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError folds a non-2xx response into an error.
type apiError struct {
	Status int
	Msg    string
	// RID is the X-Km-Request-Id the server echoed (body or header), so
	// a failed call still hands the caller the handle that finds the
	// request in server logs and flight recorders.
	RID string
}

func (e *apiError) Error() string {
	if e.RID != "" {
		return fmt.Sprintf("kmserved: HTTP %d: %s (rid %s)", e.Status, e.Msg, e.RID)
	}
	return fmt.Sprintf("kmserved: HTTP %d: %s", e.Status, e.Msg)
}

// StatusCode extracts the HTTP status from a client error, or 0.
func StatusCode(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// RequestID extracts the server-echoed X-Km-Request-Id from a client
// error, or "".
func RequestID(err error) string {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.RID
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		return pe.RequestID
	}
	return ""
}

// PartialError reports a degraded cluster response (see
// server.SearchResponse.Partial) when the client was built
// WithFailOnPartial. Search returns it alongside the response itself.
type PartialError struct {
	// RequestID correlates with the coordinator's partial-batch warning
	// log line.
	RequestID string
	// FailedShards lists the shard ordinals whose matches are missing.
	FailedShards []int
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("kmserved: partial response: shards %v unreachable (rid %s)",
		e.FailedShards, e.RequestID)
}

// retryDelay computes the wait before retry attempt (0-based): the
// server's Retry-After hint when present, otherwise base<<attempt with
// up to 50% added jitter so a fleet of retrying clients decorrelates.
func (c *Client) retryDelay(attempt int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	d := c.backoff << attempt
	return d + rand.N(d/2+1)
}

// do round-trips one JSON request; out may be nil. With WithRetries
// configured, 503 responses and transport errors are retried.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = b
	}
	for attempt := 0; ; attempt++ {
		err, retryable, retryAfter := c.roundTrip(ctx, method, path, body, out)
		if err == nil || !retryable || attempt >= c.retries {
			return err
		}
		select {
		case <-time.After(c.retryDelay(attempt, retryAfter)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// roundTrip performs one attempt. retryable marks failures worth
// repeating (503 or transport-level); retryAfter carries the server's
// backoff hint when one was sent.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte, out any) (err error, retryable bool, retryAfter string) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err, false, ""
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate correlation state from the context: a coordinator runs
	// its worker fan-out on a context carrying its request ID (and the
	// sampled-trace flag), so every hop shares one X-Km-Request-Id
	// without threading it through call signatures.
	if rid, ok := obs.RequestID(ctx); ok {
		req.Header.Set(server.HeaderRequestID, rid)
	}
	if obs.TraceRequested(ctx) {
		req.Header.Set(server.HeaderTrace, "1")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport failure: refused, reset, timed out. Context
		// cancellation is not retryable — the caller gave up.
		return err, ctx.Err() == nil, ""
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e server.ErrorResponse
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		rid := e.RequestID
		if rid == "" {
			rid = resp.Header.Get(server.HeaderRequestID)
		}
		return &apiError{Status: resp.StatusCode, Msg: msg, RID: rid},
			resp.StatusCode == http.StatusServiceUnavailable,
			resp.Header.Get("Retry-After")
	}
	if out == nil {
		return nil, false, ""
	}
	return json.NewDecoder(resp.Body).Decode(out), false, ""
}

// Health checks GET /healthz; nil means the server is up and accepting.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Ready checks GET /readyz; nil means the server is accepting and has
// finished warming its shards (see server.Config.WarmIndexes).
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// RegisterIndex loads the server-side file path under name.
func (c *Client) RegisterIndex(ctx context.Context, name, path string) (server.IndexInfo, error) {
	var info server.IndexInfo
	err := c.do(ctx, http.MethodPost, "/v1/indexes",
		server.RegisterRequest{Name: name, Path: path}, &info)
	return info, err
}

// Indexes lists the registered indexes.
func (c *Client) Indexes(ctx context.Context) (server.IndexListResponse, error) {
	var out server.IndexListResponse
	err := c.do(ctx, http.MethodGet, "/v1/indexes", nil, &out)
	return out, err
}

// RemoveIndex evicts the named index.
func (c *Client) RemoveIndex(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/indexes/"+url.PathEscape(name), nil, nil)
}

// Search runs one search request (single read or batch). The returned
// response carries the server's request ID (RequestID field) and, for a
// sampled request (obs.WithTraceRequest on ctx), the server's span
// fragments. With WithFailOnPartial, a Partial response is returned
// together with a *PartialError describing the missing shards.
func (c *Client) Search(ctx context.Context, req server.SearchRequest) (*server.SearchResponse, error) {
	var out server.SearchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/search", req, &out); err != nil {
		return nil, err
	}
	if c.failOnPartial && out.Partial {
		return &out, &PartialError{RequestID: out.RequestID, FailedShards: out.FailedShards}
	}
	return &out, nil
}

// Metrics fetches the /metrics.json snapshot as raw JSON keys. (The
// /metrics path serves the Prometheus text exposition for scrapers.)
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/metrics.json", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
