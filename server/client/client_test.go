package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bwtmatch/internal/obs"
	"bwtmatch/server"
)

// flaky503 answers 503 (with an optional Retry-After) until the
// attempt counter passes okAfter, then succeeds.
func flaky503(attempts *atomic.Int64, okAfter int64, retryAfter string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= okAfter {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`))
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
}

func TestRetriesOn503(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky503(&attempts, 2, "0"))
	defer hs.Close()

	c := New(hs.URL, WithRetries(3, time.Millisecond))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after retries: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("%d attempts, want 3 (two 503s then success)", got)
	}
}

func TestNoRetriesByDefault(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky503(&attempts, 1, ""))
	defer hs.Close()

	c := New(hs.URL)
	if err := c.Health(context.Background()); StatusCode(err) != http.StatusServiceUnavailable {
		t.Fatalf("error %v, want bare 503", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("%d attempts, want exactly 1 without WithRetries", got)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no such index"}`))
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(3, time.Millisecond))
	if _, err := c.Indexes(context.Background()); StatusCode(err) != http.StatusNotFound {
		t.Fatalf("error %v, want 404", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("%d attempts, want 1 (4xx is not retryable)", got)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	var attempts atomic.Int64
	// Retry-After of 5s would stall far past the context deadline; the
	// retry loop must give up on ctx instead of sleeping it out.
	hs := httptest.NewServer(flaky503(&attempts, 100, "5"))
	defer hs.Close()

	c := New(hs.URL, WithRetries(5, time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("expected failure under an expiring context")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop slept %v past the context deadline", elapsed)
	}
}

func TestRetryOnConnectionRefused(t *testing.T) {
	// A server that dies after the first 503: the subsequent attempts hit
	// a closed port (transport error) and must still count as retryable.
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky503(&attempts, 1000, ""))
	url := hs.URL
	hs.Close()

	c := New(url, WithRetries(2, time.Millisecond))
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected transport failure")
	}
	if StatusCode(err) != 0 {
		t.Errorf("want transport-level error, got HTTP %d", StatusCode(err))
	}
}

func TestRetryDelayPrefersRetryAfter(t *testing.T) {
	c := New("http://unused", WithRetries(3, 100*time.Millisecond))
	if d := c.retryDelay(0, "2"); d != 2*time.Second {
		t.Errorf("Retry-After 2 gave %v, want 2s", d)
	}
	// Backoff grows with the attempt and carries jitter within [base<<n, 1.5*base<<n].
	for attempt, base := range []time.Duration{100, 200, 400} {
		base *= time.Millisecond
		if d := c.retryDelay(attempt, ""); d < base || d > base+base/2 {
			t.Errorf("attempt %d delay %v outside [%v, %v]", attempt, d, base, base+base/2)
		}
	}
}

// TestSearchRoundTrip pins the JSON contract end to end through a stub.
func TestSearchRoundTrip(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req server.SearchRequest
		if err := decodeInto(r, &req); err != nil {
			t.Errorf("decoding forwarded request: %v", err)
		}
		if req.Index != "g" || len(req.Reads) != 1 {
			t.Errorf("forwarded request %+v", req)
		}
		w.Write([]byte(`{"index":"g","method":"a","results":[{"matches":[{"pos":7,"mismatches":1}]}],"reads":1,"matches":1}`))
	}))
	defer hs.Close()

	c := New(hs.URL)
	resp, err := c.Search(context.Background(), server.SearchRequest{
		Index: "g", K: 1, Reads: []server.Read{{Seq: "acgt"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches != 1 || resp.Results[0].Matches[0].Pos != 7 {
		t.Errorf("response %+v", resp)
	}
}

func decodeInto(r *http.Request, v any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}

// The client turns context correlation state into wire headers: the
// request ID always, the trace flag only when sampled.
func TestContextPropagatesToHeaders(t *testing.T) {
	var gotRID, gotTrace string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotRID = r.Header.Get(server.HeaderRequestID)
		gotTrace = r.Header.Get(server.HeaderTrace)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer hs.Close()

	c := New(hs.URL)
	ctx := obs.WithTraceRequest(obs.WithRequestID(context.Background(), "creq-77"))
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if gotRID != "creq-77" || gotTrace != "1" {
		t.Errorf("headers rid=%q trace=%q, want creq-77/1", gotRID, gotTrace)
	}

	// A bare context sends neither header.
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if gotRID != "" || gotTrace != "" {
		t.Errorf("bare context leaked headers rid=%q trace=%q", gotRID, gotTrace)
	}
}

func TestErrorCarriesRequestID(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.HeaderRequestID, "req-000123")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no such index","request_id":"req-000123"}`))
	}))
	defer hs.Close()

	_, err := New(hs.URL).Indexes(context.Background())
	if err == nil {
		t.Fatal("expected 404")
	}
	if RequestID(err) != "req-000123" {
		t.Errorf("RequestID(err) = %q, want req-000123", RequestID(err))
	}
	if !strings.Contains(err.Error(), "req-000123") {
		t.Errorf("error string omits rid: %v", err)
	}

	// Body without request_id: fall back to the response header.
	hs2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.HeaderRequestID, "req-hdr-9")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"shed"}`))
	}))
	defer hs2.Close()
	err = New(hs2.URL).Health(context.Background())
	if RequestID(err) != "req-hdr-9" {
		t.Errorf("header fallback rid = %q, want req-hdr-9", RequestID(err))
	}
}

func TestFailOnPartial(t *testing.T) {
	body := `{"index":"g","method":"a","results":[{"matches":[]}],"reads":1,` +
		`"partial":true,"failed_shards":[1,3],"request_id":"creq-p-1"}`
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(body))
	}))
	defer hs.Close()

	// Default client: partial responses are not errors.
	resp, err := New(hs.URL).Search(context.Background(), server.SearchRequest{Index: "g", Seq: "acgt"})
	if err != nil || !resp.Partial {
		t.Fatalf("default client: resp %+v err %v", resp, err)
	}

	// WithFailOnPartial: error carries the details, response still usable.
	resp, err = New(hs.URL, WithFailOnPartial()).Search(context.Background(),
		server.SearchRequest{Index: "g", Seq: "acgt"})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if pe.RequestID != "creq-p-1" || len(pe.FailedShards) != 2 || pe.FailedShards[1] != 3 {
		t.Errorf("partial error = %+v", pe)
	}
	if RequestID(err) != "creq-p-1" {
		t.Errorf("RequestID(partial err) = %q", RequestID(err))
	}
	if resp == nil || !resp.Partial {
		t.Errorf("degraded response not returned alongside the error")
	}
}
