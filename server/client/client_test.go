package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bwtmatch/server"
)

// flaky503 answers 503 (with an optional Retry-After) until the
// attempt counter passes okAfter, then succeeds.
func flaky503(attempts *atomic.Int64, okAfter int64, retryAfter string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= okAfter {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`))
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
}

func TestRetriesOn503(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky503(&attempts, 2, "0"))
	defer hs.Close()

	c := New(hs.URL, WithRetries(3, time.Millisecond))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after retries: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("%d attempts, want 3 (two 503s then success)", got)
	}
}

func TestNoRetriesByDefault(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky503(&attempts, 1, ""))
	defer hs.Close()

	c := New(hs.URL)
	if err := c.Health(context.Background()); StatusCode(err) != http.StatusServiceUnavailable {
		t.Fatalf("error %v, want bare 503", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("%d attempts, want exactly 1 without WithRetries", got)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var attempts atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no such index"}`))
	}))
	defer hs.Close()

	c := New(hs.URL, WithRetries(3, time.Millisecond))
	if _, err := c.Indexes(context.Background()); StatusCode(err) != http.StatusNotFound {
		t.Fatalf("error %v, want 404", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("%d attempts, want 1 (4xx is not retryable)", got)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	var attempts atomic.Int64
	// Retry-After of 5s would stall far past the context deadline; the
	// retry loop must give up on ctx instead of sleeping it out.
	hs := httptest.NewServer(flaky503(&attempts, 100, "5"))
	defer hs.Close()

	c := New(hs.URL, WithRetries(5, time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("expected failure under an expiring context")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop slept %v past the context deadline", elapsed)
	}
}

func TestRetryOnConnectionRefused(t *testing.T) {
	// A server that dies after the first 503: the subsequent attempts hit
	// a closed port (transport error) and must still count as retryable.
	var attempts atomic.Int64
	hs := httptest.NewServer(flaky503(&attempts, 1000, ""))
	url := hs.URL
	hs.Close()

	c := New(url, WithRetries(2, time.Millisecond))
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected transport failure")
	}
	if StatusCode(err) != 0 {
		t.Errorf("want transport-level error, got HTTP %d", StatusCode(err))
	}
}

func TestRetryDelayPrefersRetryAfter(t *testing.T) {
	c := New("http://unused", WithRetries(3, 100*time.Millisecond))
	if d := c.retryDelay(0, "2"); d != 2*time.Second {
		t.Errorf("Retry-After 2 gave %v, want 2s", d)
	}
	// Backoff grows with the attempt and carries jitter within [base<<n, 1.5*base<<n].
	for attempt, base := range []time.Duration{100, 200, 400} {
		base *= time.Millisecond
		if d := c.retryDelay(attempt, ""); d < base || d > base+base/2 {
			t.Errorf("attempt %d delay %v outside [%v, %v]", attempt, d, base, base+base/2)
		}
	}
}

// TestSearchRoundTrip pins the JSON contract end to end through a stub.
func TestSearchRoundTrip(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req server.SearchRequest
		if err := decodeInto(r, &req); err != nil {
			t.Errorf("decoding forwarded request: %v", err)
		}
		if req.Index != "g" || len(req.Reads) != 1 {
			t.Errorf("forwarded request %+v", req)
		}
		w.Write([]byte(`{"index":"g","method":"a","results":[{"matches":[{"pos":7,"mismatches":1}]}],"reads":1,"matches":1}`))
	}))
	defer hs.Close()

	c := New(hs.URL)
	resp, err := c.Search(context.Background(), server.SearchRequest{
		Index: "g", K: 1, Reads: []server.Read{{Seq: "acgt"}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches != 1 || resp.Results[0].Matches[0].Pos != 7 {
		t.Errorf("response %+v", resp)
	}
}

func decodeInto(r *http.Request, v any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}
